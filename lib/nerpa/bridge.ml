(* Data conversion between the three planes, replacing the hand-written
   glue code of a traditional SDN stack:
   - OVSDB rows -> DL input rows (driven by the generated declarations);
   - DL output rows -> P4Runtime table entries (driven by the mapping
     recorded at generation time);
   - P4Runtime digests -> DL input rows. *)

open Dl

exception Conversion_error of string

let error fmt = Format.kasprintf (fun s -> raise (Conversion_error s)) fmt

(* ---------------- OVSDB -> DL ---------------- *)

let atom_to_value (target : Dtype.t) (a : Ovsdb.Atom.t) : Value.t =
  match target, a with
  | Dtype.TInt, Ovsdb.Atom.Integer i -> Value.VInt i
  | Dtype.TDouble, Ovsdb.Atom.Real f -> Value.VDouble f
  | Dtype.TBool, Ovsdb.Atom.Boolean b -> Value.VBool b
  | Dtype.TString, Ovsdb.Atom.String s -> Value.VString s
  | Dtype.TString, Ovsdb.Atom.Uuid u -> Value.VString (Ovsdb.Uuid.to_string u)
  | t, a ->
    error "cannot convert atom %s to %s" (Ovsdb.Atom.to_string a)
      (Dtype.to_string t)

let datum_to_value (target : Dtype.t) (d : Ovsdb.Datum.t) : Value.t =
  match target, d with
  | Dtype.TOption _, Ovsdb.Datum.Set [] -> Value.VOption None
  | Dtype.TOption t, Ovsdb.Datum.Set [ a ] ->
    Value.VOption (Some (atom_to_value t a))
  | Dtype.TVec t, Ovsdb.Datum.Set atoms ->
    Value.VVec (List.map (atom_to_value t) atoms)
  | Dtype.TMap (kt, vt), Ovsdb.Datum.Map pairs ->
    Value.VMap
      (List.map (fun (k, v) -> (atom_to_value kt k, atom_to_value vt v)) pairs)
  | t, Ovsdb.Datum.Set [ a ] -> atom_to_value t a
  | t, d ->
    error "cannot convert datum %s to %s" (Ovsdb.Datum.to_string d)
      (Dtype.to_string t)

(** Convert one management-plane row into the input row of the generated
    relation [decl] (whose first column is the row UUID). *)
let row_of_ovsdb (decl : Ast.rel_decl) (uuid : Ovsdb.Uuid.t)
    (row : Ovsdb.Db.row) : Row.t =
  Row.of_list
    (List.map
       (fun (cname, ty) ->
         if String.equal cname "_uuid" then
           Value.VString (Ovsdb.Uuid.to_string uuid)
         else
           (* generated columns sanitise the OVSDB name; recover it *)
           let oname =
             match List.assoc_opt cname row with
             | Some _ -> cname
             | None ->
               let stripped =
                 if String.length cname > 0 && cname.[String.length cname - 1] = '_'
                 then String.sub cname 0 (String.length cname - 1)
                 else cname
               in
               stripped
           in
           match List.assoc_opt oname row with
           | Some d -> datum_to_value ty d
           | None -> error "row is missing column %s" oname)
       decl.Ast.cols)

(* ---------------- DL -> P4Runtime ---------------- *)

let as_bit_value (v : Value.t) : int64 =
  match v with
  | Value.VBit (_, x) -> x
  | Value.VInt x -> x
  | v -> error "expected a bit value, got %s" (Value.to_string v)

(** Convert a row of an output relation into a P4Runtime table entry,
    following the column layout recorded in [mapping]. *)
let entry_of_row (info : P4.P4info.t) (m : Codegen.mapping) (row : Row.t) :
    P4runtime.table_entry =
  let cols = Row.values row in
  let pos = ref 0 in
  let next () =
    let v = cols.(!pos) in
    incr pos;
    v
  in
  let matches =
    List.map
      (fun (kind, _width) ->
        match kind with
        | P4.Program.Exact -> P4runtime.FmExact (as_bit_value (next ()))
        | P4.Program.Lpm ->
          let v = as_bit_value (next ()) in
          let plen =
            match next () with
            | Value.VInt l -> Int64.to_int l
            | v -> error "prefix length must be int, got %s" (Value.to_string v)
          in
          P4runtime.FmLpm (v, plen)
        | P4.Program.Ternary ->
          let v = as_bit_value (next ()) in
          let mask = as_bit_value (next ()) in
          P4runtime.FmTernary (v, mask)
        | P4.Program.Optional -> (
          match next () with
          | Value.VOption None -> P4runtime.FmOptional None
          | Value.VOption (Some v) -> P4runtime.FmOptional (Some (as_bit_value v))
          | v -> error "optional key must be option<bit<_>>, got %s" (Value.to_string v)))
      m.key_specs
  in
  let priority =
    if m.has_priority then (
      match next () with
      | Value.VInt p -> Int64.to_int p
      | v -> error "priority must be int, got %s" (Value.to_string v))
    else 0
  in
  let args = List.map (fun _ -> as_bit_value (next ())) m.param_widths in
  if !pos <> Array.length cols then
    error "relation %s: row arity %d does not match mapping" m.rel_name
      (Array.length cols);
  P4runtime.entry info ~table:m.table_name ~matches ~priority
    ~action:m.action_name ~args ()

(* ---------------- P4Runtime digests -> DL ---------------- *)

(** Convert one digest-list entry into an input row of the generated
    digest relation. *)
let row_of_digest (decl : Ast.rel_decl) (values : int64 list) : Row.t =
  if List.length values <> List.length decl.Ast.cols then
    error "digest arity mismatch for %s" decl.Ast.rname;
  Row.of_list
    (List.map2
       (fun (_, ty) v ->
         match ty with
         | Dtype.TBit w -> Value.bit w v
         | t -> error "digest column of type %s" (Dtype.to_string t))
       decl.Ast.cols values)
