(** Plane-boundary links: the controller's view of its peers as
    {!Transport} request/response channels.

    The management link carries monitor polls toward the OVSDB server;
    the P4Runtime link carries {!P4runtime.Wire} messages toward a
    switch.  Each has a [direct_*] constructor (in-process closure, the
    fast path) and a [wire_*] constructor that round-trips every
    message through serialized bytes — the monitor batches via the
    OVSDB JSON codec, the P4Runtime messages via {!P4runtime.Wire}.

    Fault-injection wraps either flavour with {!Transport.faulty}. *)

type mgmt_request = Poll_monitor
type mgmt_response = Batches of Ovsdb.Db.table_updates list

type mgmt_link = (mgmt_request, mgmt_response) Transport.t
type p4_link = (P4runtime.Wire.request, P4runtime.Wire.response) Transport.t

val direct_mgmt : Ovsdb.Db.monitor -> mgmt_link
val wire_mgmt : Ovsdb.Db.monitor -> mgmt_link

val direct_p4 : P4runtime.server -> p4_link
val wire_p4 : P4runtime.server -> p4_link
