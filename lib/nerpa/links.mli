(** Plane-boundary links: the controller's view of its peers as
    {!Transport} request/response channels.

    The management link carries monitor polls — and, since the socket
    transport made server loss real, {!Resync} requests — toward the
    OVSDB server; the P4Runtime link carries {!P4runtime.Wire} messages
    toward a switch.  Each has a [direct_*] constructor (in-process
    closure, the fast path), a [wire_*] constructor that round-trips
    every message through serialized bytes, and a [socket_*]
    constructor that speaks the same bytes over a Unix-domain socket
    toward a [lib/server] process.

    Fault-injection wraps any flavour with {!Transport.faulty}. *)

type publish = {
  pub_shard : int;  (** the publishing shard's id *)
  pub_reset : bool;
      (** first delete every row the shard previously published — sent
          by a (re)started controller so stale rows cannot survive it *)
  pub_rows : (string * (string * int) list) list;
      (** per relation, a Z-set delta of canonical row text (weights
          [+1]/[-1]; see {!Xrel} for the row codec) *)
}
(** A shard's contribution to the exchanged relations, pushed at its
    own shard daemon's exchange database. *)

type mgmt_request =
  | Poll_monitor  (** drain the monitor's queued change batches *)
  | Resync
      (** request the database's full current contents; issued after a
          reconnect or a lost batch, diffed client-side against the
          engine's inputs *)
  | Publish of publish
      (** apply a shard's exchange delta to this (exchange) database *)
  | Get_stats
      (** ask the serving process for its {!Obs} metrics snapshot —
          what [nerpa_cli stats] aggregates across a cluster's shards *)

type mgmt_response =
  | Batches of Ovsdb.Db.table_updates list
  | Snapshot of Ovsdb.Db.table_updates
  | Pub_ok  (** a {!Publish} was applied *)
  | Stats of string  (** {!Obs.render_json} of the serving process *)

type mgmt_link = (mgmt_request, mgmt_response) Transport.t
type p4_link = (P4runtime.Wire.request, P4runtime.Wire.response) Transport.t

val mgmt_handler :
  Ovsdb.Db.t -> Ovsdb.Db.monitor -> mgmt_request -> mgmt_response
(** Server-side dispatch: [Poll_monitor] drains the monitor, [Resync]
    discards any queued batches (they are subsumed) and snapshots the
    database, [Publish] applies an exchange delta via {!Xrel.apply}
    (only sensible when [db] is an exchange database), [Get_stats]
    renders this process's metrics.  Shared by the in-process links
    and [lib/server]. *)

(** {1 Management-plane codec}

    JSON text (the interoperability fallback) and the compact binary
    form ({!Ovsdb.Binc}), selected per socket connection by the frame
    codec. *)

val encode_mgmt_request : mgmt_request -> string
val decode_mgmt_request : string -> (mgmt_request, string) result
val encode_mgmt_response : mgmt_response -> string
val decode_mgmt_response : string -> (mgmt_response, string) result

val encode_mgmt_request_bin : mgmt_request -> string
val decode_mgmt_request_bin : string -> (mgmt_request, string) result
val encode_mgmt_response_bin : mgmt_response -> string
val decode_mgmt_response_bin : string -> (mgmt_response, string) result

(** Codec-indexed selectors (the shape {!Transport.socket} and
    [lib/server] consume). *)

val encode_mgmt_request_c : Transport.codec -> mgmt_request -> string
val decode_mgmt_request_c :
  Transport.codec -> string -> (mgmt_request, string) result
val encode_mgmt_response_c : Transport.codec -> mgmt_response -> string
val decode_mgmt_response_c :
  Transport.codec -> string -> (mgmt_response, string) result

val encode_p4_request_c : Transport.codec -> P4runtime.Wire.request -> string
val decode_p4_request_c :
  Transport.codec -> string -> (P4runtime.Wire.request, string) result
val encode_p4_response_c : Transport.codec -> P4runtime.Wire.response -> string
val decode_p4_response_c :
  Transport.codec -> string -> (P4runtime.Wire.response, string) result

(** {1 Constructors} *)

val direct_mgmt : Ovsdb.Db.t -> Ovsdb.Db.monitor -> mgmt_link
val wire_mgmt : Ovsdb.Db.t -> Ovsdb.Db.monitor -> mgmt_link

val socket_mgmt :
  ?codec:Transport.codec -> ?auth:string -> addr:Transport.addr -> unit ->
  mgmt_link
(** Client end of a [lib/server] management (or exchange) socket.
    [codec] (default [Binary]) is the preferred payload serialization;
    see {!Transport.socket} for the negotiation/fallback rules.
    [auth] runs the shared-secret handshake on every fresh
    connection. *)

val direct_p4 : P4runtime.server -> p4_link
val wire_p4 : P4runtime.server -> p4_link

val socket_p4 :
  ?codec:Transport.codec -> ?auth:string -> addr:Transport.addr -> unit ->
  p4_link
(** Client end of a [lib/server] per-switch socket; [codec] and [auth]
    as in {!socket_mgmt}. *)
