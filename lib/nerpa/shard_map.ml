(* The cluster's one authoritative layout artifact: which controller
   shard owns which switch, and where each shard's daemon listens.
   Rendered to a small line-based text form so `nerpa_cli`, tests and
   operators all drive a fleet from the same file; parsing is strict
   (unknown lines are errors, not comments to skate past).

   Assignment is deterministic: switch names are sorted and dealt
   round-robin across the shards, so any process handed the same
   (locations, switches) inputs — or the same rendered map — derives
   the same ownership.

   A daemon's listeners are derived from its location:

   - [Dir d]: Unix-domain sockets in [d] — [ovsdb.sock] (shard 0
     only; it hosts the shared management database), [xrel.sock] (the
     shard's exchange store), [p4-<switch>.sock] per hosted switch.
   - [Tcp (host, base)]: [base] = management (shard 0 only),
     [base+1] = exchange store, [base+2+k] = the shard's k-th switch
     in fleet order. *)

type location = Dir of string | Tcp of string * int

type t = {
  locations : location array;
  assign : (string * int) list; (* sorted by switch name *)
}

let location_to_string = function
  | Dir d -> "dir:" ^ d
  | Tcp (h, p) -> Printf.sprintf "tcp:%s:%d" h p

let location_of_string s =
  match String.index_opt s ':' with
  | Some i when String.sub s 0 i = "dir" ->
    let d = String.sub s (i + 1) (String.length s - i - 1) in
    if d = "" then Error "empty shard directory" else Ok (Dir d)
  | _ -> (
    match Transport.addr_of_string s with
    | Ok (Transport.Tcp (h, p)) -> Ok (Tcp (h, p))
    | Ok (Transport.Unix_path _) ->
      Error "shard locations are dir:PATH or tcp:HOST:PORT"
    | Error e -> Error e)

let create ~locations ~switches =
  if locations = [] then invalid_arg "Shard_map.create: no shards";
  let sorted = List.sort_uniq String.compare switches in
  if List.length sorted <> List.length switches then
    invalid_arg "Shard_map.create: duplicate switch names";
  let n = List.length locations in
  let assign = List.mapi (fun i name -> (name, i mod n)) sorted in
  { locations = Array.of_list locations; assign }

let nshards t = Array.length t.locations

let shard_of t name =
  match List.assoc_opt name t.assign with
  | Some s -> s
  | None -> invalid_arg ("Shard_map.shard_of: unknown switch " ^ name)

let switches t = List.map fst t.assign

let switches_of t shard =
  List.filter_map
    (fun (name, s) -> if s = shard then Some name else None)
    t.assign

let location t shard =
  if shard < 0 || shard >= nshards t then
    invalid_arg (Printf.sprintf "Shard_map.location: no shard %d" shard)
  else t.locations.(shard)

(* ---------------- socket layout ---------------- *)

let mgmt_socket_path ~dir = Filename.concat dir "ovsdb.sock"
let xrel_socket_path ~dir = Filename.concat dir "xrel.sock"
let p4_socket_path ~dir name = Filename.concat dir ("p4-" ^ name ^ ".sock")

let mgmt_addr t =
  match location t 0 with
  | Dir d -> Transport.Unix_path (mgmt_socket_path ~dir:d)
  | Tcp (h, p) -> Transport.Tcp (h, p)

let xrel_addr t shard =
  match location t shard with
  | Dir d -> Transport.Unix_path (xrel_socket_path ~dir:d)
  | Tcp (h, p) -> Transport.Tcp (h, p + 1)

let p4_addr t name =
  let shard = shard_of t name in
  match location t shard with
  | Dir d -> Transport.Unix_path (p4_socket_path ~dir:d name)
  | Tcp (h, p) -> (
    let rec index k = function
      | [] -> invalid_arg ("Shard_map.p4_addr: unknown switch " ^ name)
      | n :: _ when String.equal n name -> k
      | _ :: rest -> index (k + 1) rest
    in
    Transport.Tcp (h, p + 2 + index 0 (switches_of t shard)))

(* ---------------- text form ---------------- *)

let header = "nerpa-shard-map v1"

let render t =
  let b = Buffer.create 256 in
  Buffer.add_string b header;
  Buffer.add_char b '\n';
  Array.iteri
    (fun i loc ->
      Buffer.add_string b
        (Printf.sprintf "shard %d %s\n" i (location_to_string loc)))
    t.locations;
  List.iter
    (fun (name, s) ->
      Buffer.add_string b (Printf.sprintf "switch %s %d\n" name s))
    t.assign;
  Buffer.contents b

let parse text =
  let err fmt = Printf.ksprintf (fun m -> Error m) fmt in
  let lines =
    String.split_on_char '\n' text
    |> List.map String.trim
    |> List.filter (fun l -> l <> "")
  in
  match lines with
  | [] -> Error "empty shard map"
  | hdr :: rest when String.equal hdr header -> (
    let rec go shards assign = function
      | [] -> Ok (List.rev shards, List.rev assign)
      | line :: rest -> (
        match String.split_on_char ' ' line with
        | [ "shard"; i; loc ] -> (
          match int_of_string_opt i, location_of_string loc with
          | Some i, Ok loc when i = List.length shards ->
            go ((i, loc) :: shards) assign rest
          | Some _, Ok _ -> err "shard ids must be dense and in order: %s" line
          | _, Error e -> err "%s in %S" e line
          | None, _ -> err "bad shard line %S" line)
        | [ "switch"; name; s ] -> (
          match int_of_string_opt s with
          | Some s -> go shards ((name, s) :: assign) rest
          | None -> err "bad switch line %S" line)
        | _ -> err "bad shard-map line %S" line)
    in
    match go [] [] rest with
    | Error e -> Error e
    | Ok (shards, assign) ->
      if shards = [] then Error "shard map names no shards"
      else
        let n = List.length shards in
        let bad =
          List.find_opt (fun (_, s) -> s < 0 || s >= n) assign
        in
        (match bad with
        | Some (name, s) -> err "switch %s assigned to missing shard %d" name s
        | None ->
          let sorted =
            List.sort (fun (a, _) (b, _) -> String.compare a b) assign
          in
          let rec dup = function
            | (a, _) :: ((b, _) :: _ as rest) ->
              if String.equal a b then Some a else dup rest
            | _ -> None
          in
          (match dup sorted with
          | Some name -> err "switch %s assigned twice" name
          | None ->
            Ok
              {
                locations = Array.of_list (List.map snd shards);
                assign = sorted;
              })))
  | hdr :: _ -> err "bad shard-map header %S (want %S)" hdr header
