(** Multi-controller sharding: wiring a fleet of controllers together,
    one per shard of a {!Shard_map}.

    The socket half derives one shard's endpoint and exchange links
    from a shard map, toward real [lib/server] daemons.  The [local]
    half is the in-process harness the convergence and fault tests
    use: the same topology — shared management database, per-shard
    exchange stores, each controller owning its shard's switches —
    over direct links, with {!kill}/{!restart} swapping a shard's
    daemon state out from behind {!Transport.switchable} relays so
    peers observe ordinary connectivity edges and resync, all
    deterministically and without processes or sockets. *)

(** {1 Socket wiring from a shard map} *)

val shard_endpoint :
  ?codec:Transport.codec -> ?auth:string -> Shard_map.t -> shard:int ->
  Endpoint.t
(** The per-plane endpoint shard [shard]'s controller connects with:
    the shared management database at shard 0's daemon, each owned
    switch at its own daemon (see {!Endpoint.shard_planes}). *)

val shard_exchange :
  ?codec:Transport.codec -> ?auth:string -> Shard_map.t -> shard:int ->
  Controller.exchange
(** The exchange attachment for shard [shard]: a publish link to its
    own store and a subscription link per peer store, all sockets
    derived from the map's layout. *)

(** {1 In-process harness} *)

type local

val create_local :
  ?digest_replace:(string * string list) list ->
  ?max_iterations:int ->
  nshards:int ->
  db:Ovsdb.Db.t ->
  p4:P4.Program.t ->
  rules:string ->
  switch_names:string list ->
  unit ->
  local
(** An [nshards]-controller fleet over [switch_names] (assigned by the
    shard map's deterministic round-robin), every controller running
    the same [p4]/[rules] against the shared [db].  Each shard hosts
    its own switches and exchange store.
    @raise Invalid_argument on [nshards <= 0] or duplicate names. *)

val map : local -> Shard_map.t
val nshards : local -> int

val controller : local -> int -> Controller.t
(** The named shard's current controller (replaced by {!restart}). *)

val alive : local -> int -> bool
val owner : local -> string -> int

val switch : local -> string -> P4.Switch.t
(** The named switch's current live object, for traffic injection.
    @raise Invalid_argument while its shard is down. *)

val kill : local -> int -> unit
(** Take one shard down: controller, hosted switches and exchange
    store are lost, and every peer's link to the store drops.  The
    shared management database is modelled as an external OVSDB
    server and survives. *)

val restart : local -> int -> unit
(** Restart a killed shard from nothing: fresh store, fresh (empty)
    switches, a fresh controller that resyncs the shared database,
    reset-publishes its store and snapshot-resyncs every peer, while
    peers observe reconnect edges and resync the store in turn.
    Learned state behind the shard returns once traffic re-learns it.
    @raise Invalid_argument if the shard is alive. *)

val sync_all : ?max_rounds:int -> local -> int
(** Round-robin {!Controller.sync} over live members until a full
    round commits no transaction anywhere; returns the total
    committed.  @raise Failure after [max_rounds] (default 100). *)
