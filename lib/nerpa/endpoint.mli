(** Where each plane of a deployment lives.

    An [Endpoint.t] names the transport carrying each plane — the
    management (OVSDB monitor) link and one P4Runtime link per switch —
    replacing the old [?mgmt_link_of]/[?p4_link_of] optional-argument
    sprawl on {!Controller.create}.  Pass it to {!Controller.create}
    (in-process flavours, which need the local [db]/[p4] objects) or
    {!Controller.connect} (socket flavours, which need only paths). *)

(** How a plane's messages travel. *)
type transport =
  | In_process  (** direct closure call; the fast path *)
  | Wire  (** in-process, but round-tripped through serialized bytes *)
  | Socket of string * Transport.codec
      (** framed bytes over the Unix-domain socket at this path, toward
          a [lib/server] process, preferring this payload codec
          (JSON fallback negotiation per {!Transport.socket}) *)
  | Faulty of int * transport
      (** wrap [transport] with seeded fault injection
          ({!Transport.default_faults}); the controller exposes the
          {!Transport.ctl} via {!Controller.mgmt_ctl} /
          {!Controller.p4_ctl} *)

type t = {
  mgmt : transport;  (** the management (OVSDB monitor) plane *)
  p4_of : string -> transport;  (** per-switch P4Runtime plane, by name *)
}

val in_process : t
(** Everything direct — the default deployment. *)

val wire : t
(** Every plane through the byte codecs; catches codec asymmetries. *)

val sockets : ?codec:Transport.codec -> dir:string -> unit -> t
(** Every plane over Unix-domain sockets under [dir], using the same
    path layout [lib/server] binds: [ovsdb.sock] for the management
    plane, [p4-<name>.sock] per switch.  [codec] (default [Binary])
    is the preferred payload serialization for every plane. *)

val faulty_mgmt : seed:int -> t -> t
(** Wrap the management plane with seeded fault injection. *)

val faulty_p4 : seed:int -> t -> t
(** Wrap every switch's P4Runtime plane with seeded fault injection. *)

(** {1 Socket path layout}

    Shared with [lib/server] so client and server agree by
    construction. *)

val mgmt_socket_path : dir:string -> string
val p4_socket_path : dir:string -> string -> string

(** {1 Introspection} *)

val transport_to_string : transport -> string

val is_remote : transport -> bool
(** [true] when the transport bottoms out in a socket — i.e. it needs
    no local database or switch object on this side. *)
