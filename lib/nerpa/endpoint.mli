(** Where a deployment lives.

    An [Endpoint.t] names either the transports carrying one
    controller's planes — the management (OVSDB monitor) link and one
    P4Runtime link per switch — or a whole sharded fleet via a
    {!Shard_map.t}.  Pass it to {!Controller.create} (in-process
    flavours, which need the local [db]/[p4] objects),
    {!Controller.connect} (socket flavours, which need only
    addresses), or [Cluster.connect_shard] (cluster flavour). *)

(** How a plane's messages travel. *)
type transport =
  | In_process  (** direct closure call; the fast path *)
  | Wire  (** in-process, but round-tripped through serialized bytes *)
  | Socket of {
      addr : Transport.addr;
      codec : Transport.codec;
      auth : string option;
    }
      (** framed bytes over a Unix-domain or TCP socket toward a
          [lib/server] process, preferring this payload codec (JSON
          fallback negotiation per {!Transport.socket}); [auth] is the
          shared secret for the connection handshake, when the daemon
          demands one *)
  | Faulty of {
      seed : int;
      faults : Transport.faults option;
      inner : transport;
    }
      (** wrap [inner] with seeded fault injection
          ([faults] default {!Transport.default_faults}); the
          controller exposes the {!Transport.ctl} via
          {!Controller.mgmt_ctl} / {!Controller.p4_ctl} *)

(** One controller's per-plane transports. *)
type planes = { mgmt : transport; p4_of : string -> transport }

(** A whole sharded fleet, addressed through its shard map. *)
type cluster = {
  map : Shard_map.t;
  codec : Transport.codec;
  auth : string option;
}

type t = Planes of planes | Cluster of cluster

val plane_in_process : transport
val plane_wire : transport

val socket : ?codec:Transport.codec -> ?auth:string -> Transport.addr -> transport
(** A socket transport (default codec [Binary], no auth). *)

val in_process : t
(** Everything direct — the default deployment. *)

val wire : t
(** Every plane through the byte codecs; catches codec asymmetries. *)

val planes : mgmt:transport -> p4_of:(string -> transport) -> t

val sockets : ?codec:Transport.codec -> ?auth:string -> dir:string -> unit -> t
(** Every plane over Unix-domain sockets under [dir], using the same
    path layout [lib/server] binds: [ovsdb.sock] for the management
    plane, [p4-<name>.sock] per switch.  [codec] (default [Binary])
    is the preferred payload serialization for every plane; [auth]
    the shared secret when the daemon demands a handshake. *)

val cluster : ?codec:Transport.codec -> ?auth:string -> Shard_map.t -> t
(** A sharded fleet: shard daemons at the map's locations, every link
    derived from the map's socket layout. *)

val faulty_mgmt : seed:int -> ?faults:Transport.faults -> t -> t
(** Wrap the management plane with seeded fault injection.
    @raise Invalid_argument on a cluster endpoint. *)

val faulty_p4 : seed:int -> ?faults:Transport.faults -> t -> t
(** Wrap every switch's P4Runtime plane with seeded fault injection.
    @raise Invalid_argument on a cluster endpoint. *)

val planes_exn : t -> planes
(** The per-plane view of a non-cluster endpoint.
    @raise Invalid_argument on a cluster endpoint — derive one shard's
    planes via [Cluster.connect_shard] instead. *)

val shard_planes : cluster -> shard:int -> planes
(** The per-plane transports shard [shard]'s controller uses: the
    shared management database at shard 0's daemon, each of the
    shard's own switches at its own daemon. *)

val xrel_transport : cluster -> shard:int -> transport
(** The socket transport of shard [shard]'s exchange store. *)

(** {1 Socket path layout}

    Delegates to {!Shard_map}, the layout authority, so a 1-shard
    cluster and a plain serve/connect pair agree by construction. *)

val mgmt_socket_path : dir:string -> string
val p4_socket_path : dir:string -> string -> string
val xrel_socket_path : dir:string -> string

(** {1 Introspection} *)

val transport_to_string : transport -> string

val is_remote : transport -> bool
(** [true] when the transport bottoms out in a socket — i.e. it needs
    no local database or switch object on this side. *)
