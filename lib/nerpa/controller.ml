(* The Nerpa controller: the state-synchronisation loop tying the three
   planes together (Fig. 4 of the paper).

   Responsibilities:
   - subscribe to the management database and convert its per-transaction
     monitor batches into DL transactions;
   - commit each transaction to the incremental engine and translate the
     resulting *output deltas* into P4Runtime write batches (deletes
     first, so that re-keyed entries modify cleanly);
   - drain data-plane digests, feed them back as DL input insertions,
     and iterate to quiescence (the feedback loop, e.g. MAC learning);
   - maintain multicast group membership from the MulticastGroup
     relation. *)

open Dl

exception Controller_error of string

let error fmt = Format.kasprintf (fun s -> raise (Controller_error s)) fmt

type stats = {
  txns : int;             (* DL transactions committed *)
  entries_written : int;  (* table entries inserted/deleted *)
  digests_consumed : int;
  groups_updated : int;
}

(* Observability (metric names are a public contract, see README).
   The [stats] accessor is a snapshot of the nerpa.* counters, so the
   counts aggregate across controllers sharing the process. *)
let m_txns = Obs.Counter.create "nerpa.txns"
let m_entries = Obs.Counter.create "nerpa.entries_written"
let m_digests = Obs.Counter.create "nerpa.digests_consumed"
let m_groups = Obs.Counter.create "nerpa.groups_updated"
let m_syncs = Obs.Counter.create "nerpa.sync.count"
let m_iterations = Obs.Counter.create "nerpa.sync.iterations"
let m_monitor_batches = Obs.Counter.create "nerpa.sync.monitor_batches"
let m_digest_lists = Obs.Counter.create "nerpa.sync.digest_lists"
let h_sync = Obs.Histogram.create ~unit_:"us" "nerpa.sync"
let h_write_batch = Obs.Histogram.create ~unit_:"entries" "nerpa.write_batch"

type t = {
  db : Ovsdb.Db.t;
  monitor : Ovsdb.Db.monitor;
  engine : Engine.t;
  program : Ast.program;
  mappings : Codegen.mapping list;
  input_rel_of_table : (string * Ast.rel_decl) list; (* OVSDB table -> decl *)
  digest_rel_of_name : (string * Ast.rel_decl) list; (* digest name -> decl *)
  switches : (string * P4runtime.server) list;
  (* digest relation -> key column indices for last-writer-wins
     replacement (e.g. MAC mobility: a newly learned (vlan, mac)
     retracts the previous port binding) *)
  digest_replace : (string * int list) list;
  max_iterations : int;
  (* DL transactions committed by *this* controller; the return value
     of [sync] must not depend on whether Obs collection is enabled. *)
  mutable ntxns : int;
}

(** Build a controller from the three plane descriptions.  [rules] is
    the user-written DL program text (rules plus optional internal
    relation declarations); everything else is generated.
    [max_iterations] bounds the digest feedback loop in {!sync}. *)
let create ?(digest_replace = []) ?(max_iterations = 1000)
    ~(db : Ovsdb.Db.t) ~(p4 : P4.Program.t)
    ~(rules : string) ~(switches : (string * P4.Switch.t) list) () : t =
  if max_iterations <= 0 then
    error "max_iterations must be positive (got %d)" max_iterations;
  let schema = db.Ovsdb.Db.schema in
  let generated = Codegen.generate ~schema ~p4 in
  let user =
    match Parser.parse_program rules with
    | Ok p -> p
    | Error msg -> error "rules do not parse: %s" msg
  in
  let program = Codegen.assemble generated user in
  let engine = Engine.create program in
  let monitor =
    Ovsdb.Db.add_monitor db
      (List.map (fun (t : Ovsdb.Schema.table) -> (t.tname, None)) schema.tables)
  in
  let input_rel_of_table =
    List.map
      (fun (t : Ovsdb.Schema.table) ->
        match Ast.find_decl program (Codegen.camel t.tname) with
        | Some d -> (t.tname, d)
        | None -> error "missing generated relation for table %s" t.tname)
      schema.tables
  in
  let digest_rel_of_name =
    List.map
      (fun (dname, rname) ->
        match Ast.find_decl program rname with
        | Some d -> (dname, d)
        | None -> error "missing generated relation for digest %s" dname)
      generated.digest_rels
  in
  let digest_replace =
    List.map
      (fun (dname, key_cols) ->
        match List.assoc_opt dname digest_rel_of_name with
        | None -> error "digest_replace: unknown digest %s" dname
        | Some decl ->
          let index_of c =
            let rec go i = function
              | [] -> error "digest_replace: %s has no column %s" dname c
              | (name, _) :: rest -> if String.equal name c then i else go (i + 1) rest
            in
            go 0 decl.Ast.cols
          in
          (decl.Ast.rname, List.map index_of key_cols))
      digest_replace
  in
  {
    db;
    monitor;
    engine;
    program;
    mappings = generated.mappings;
    input_rel_of_table;
    digest_rel_of_name;
    switches = List.map (fun (n, sw) -> (n, P4runtime.attach sw)) switches;
    digest_replace;
    max_iterations;
    ntxns = 0;
  }

(* Accumulate commit deltas per relation as Z-set unions, instead of
   concatenating per-commit delta lists (which grew quadratically over
   a sync's feedback iterations). *)
let merge_deltas (acc : (string * Zset.t) list) (ds : (string * Zset.t) list) :
    (string * Zset.t) list =
  List.fold_left
    (fun acc (rel, z) ->
      match List.assoc_opt rel acc with
      | Some z0 -> (rel, Zset.union z0 z) :: List.remove_assoc rel acc
      | None -> (rel, z) :: acc)
    acc ds

(* ---------------- pushing output deltas to the data plane ----------- *)

let push_deltas (t : t) (deltas : (string * Zset.t) list) : unit =
  let outputs = Engine.output_deltas t.engine deltas in
  if outputs <> [] then begin
    (* Multicast groups: recompute the membership of touched groups from
       the engine's full relation contents. *)
    let mcast_updates =
      match List.assoc_opt "MulticastGroup" outputs with
      | None -> []
      | Some dz ->
        let touched =
          Zset.fold
            (fun row _ acc ->
              let g = Bridge.as_bit_value (Row.get row 0) in
              if List.mem g acc then acc else g :: acc)
            dz []
        in
        List.map
          (fun g ->
            let ports =
              List.map
                (fun row -> Bridge.as_bit_value (Row.get row 1))
                (Engine.query t.engine "MulticastGroup" ~positions:[ 0 ]
                   ~key:[ Value.bit 16 g ])
            in
            Obs.Counter.incr m_groups;
            P4runtime.set_multicast ~group:g ~ports:(List.sort Int64.compare ports))
          touched
    in
    List.iter
      (fun (swname, srv) ->
        let info = P4runtime.info srv in
        (* Deletions first so that an entry whose action arguments
           changed is removed before its replacement is inserted. *)
        let dels = ref [] and inss = ref [] in
        List.iter
          (fun (rel, dz) ->
            match List.find_opt (fun (m : Codegen.mapping) -> m.rel_name = rel) t.mappings with
            | None -> () (* MulticastGroup handled above *)
            | Some m ->
              Zset.iter
                (fun row w ->
                  let entry = Bridge.entry_of_row info m row in
                  if w > 0 then inss := P4runtime.insert entry :: !inss
                  else dels := P4runtime.delete entry :: !dels)
                dz)
          outputs;
        let updates = List.rev !dels @ List.rev !inss @ mcast_updates in
        if updates <> [] then begin
          Obs.Histogram.observe h_write_batch (float_of_int (List.length updates));
          (match P4runtime.write srv updates with
          | Ok () -> ()
          | Error msg -> error "switch %s rejected updates: %s" swname msg);
          Obs.Counter.add m_entries (List.length !dels + List.length !inss)
        end)
      t.switches
  end

(* ---------------- management plane -> engine ---------------- *)

(* Returns the commit's deltas so [sync] can name the still-changing
   relations when the feedback loop fails to quiesce. *)
let apply_monitor_batch (t : t) (batch : Ovsdb.Db.table_updates) :
    (string * Zset.t) list =
  let txn = Engine.transaction t.engine in
  List.iter
    (fun (table, rows) ->
      match List.assoc_opt table t.input_rel_of_table with
      | None -> ()
      | Some decl ->
        List.iter
          (fun (uuid, (upd : Ovsdb.Db.row_update)) ->
            (match upd.before with
            | Some row ->
              Engine.delete txn decl.Ast.rname (Bridge.row_of_ovsdb decl uuid row)
            | None -> ());
            match upd.after with
            | Some row ->
              Engine.insert txn decl.Ast.rname (Bridge.row_of_ovsdb decl uuid row)
            | None -> ())
          rows)
    batch;
  let deltas = Engine.commit txn in
  t.ntxns <- t.ntxns + 1;
  Obs.Counter.incr m_txns;
  push_deltas t deltas;
  deltas

(* ---------------- data plane -> engine (feedback loop) -------------- *)

(* Returns whether any digest list was turned into a transaction, plus
   the accumulated commit deltas (for quiescence diagnostics). *)
let consume_digests (t : t) : bool * (string * Zset.t) list =
  let any = ref false in
  let all_deltas = ref [] in
  List.iter
    (fun (_, srv) ->
      let info = P4runtime.info srv in
      List.iter
        (fun (dl : P4runtime.digest_list) ->
          let dinfo =
            match P4.P4info.find_digest_by_id info dl.digest_id with
            | Some d -> d
            | None -> error "unknown digest id %d" dl.digest_id
          in
          Obs.Counter.incr m_digest_lists;
          match List.assoc_opt dinfo.digest_name t.digest_rel_of_name with
          | None -> P4runtime.ack_digest_list srv ~list_id:dl.list_id
          | Some decl ->
            let txn = Engine.transaction t.engine in
            let replace_keys = List.assoc_opt decl.Ast.rname t.digest_replace in
            List.iter
              (fun values ->
                let row = Bridge.row_of_digest decl values in
                (match replace_keys with
                | None -> ()
                | Some idxs ->
                  (* last-writer-wins: retract rows agreeing on the keys *)
                  List.iter
                    (fun old ->
                      if
                        (not (Row.equal old row))
                        && List.for_all
                             (fun i ->
                               Value.equal (Row.get old i) (Row.get row i))
                             idxs
                      then Engine.delete txn decl.Ast.rname old)
                    (Engine.relation_rows t.engine decl.Ast.rname));
                Engine.insert txn decl.Ast.rname row;
                Obs.Counter.incr m_digests)
              dl.entries;
            let deltas = Engine.commit txn in
            t.ntxns <- t.ntxns + 1;
            Obs.Counter.incr m_txns;
            P4runtime.ack_digest_list srv ~list_id:dl.list_id;
            any := true;
            all_deltas := merge_deltas !all_deltas deltas;
            push_deltas t deltas)
        (P4runtime.stream_digests srv))
    t.switches;
  (!any, !all_deltas)

(* ---------------- the synchronisation loop ---------------- *)

(** Process all pending management-plane changes and data-plane digests
    until the system is quiescent.  Returns the number of DL
    transactions committed during this call. *)
let sync (t : t) : int =
  Obs.Counter.incr m_syncs;
  Obs.Histogram.time h_sync @@ fun () ->
  let before = t.ntxns in
  let rec loop fuel last_deltas =
    if fuel = 0 then begin
      let changing =
        match last_deltas with
        | [] -> "(no relation deltas recorded)"
        | l ->
          String.concat ", "
            (List.map
               (fun (rel, z) ->
                 Printf.sprintf "%s (%d rows)" rel (Zset.cardinal z))
               l)
      in
      error
        "sync did not quiesce after %d iterations (feedback loop?); \
         still changing in the last iteration: %s"
        t.max_iterations changing
    end;
    Obs.Counter.incr m_iterations;
    let batches = Ovsdb.Db.poll t.monitor in
    Obs.Counter.add m_monitor_batches (List.length batches);
    let batch_deltas =
      List.fold_left
        (fun acc batch -> merge_deltas acc (apply_monitor_batch t batch))
        [] batches
    in
    let digests_any, digest_deltas = consume_digests t in
    if batches <> [] || digests_any then
      loop (fuel - 1) (merge_deltas batch_deltas digest_deltas)
  in
  loop t.max_iterations [];
  t.ntxns - before

(** Direct access to the engine, for inspection in tests and examples. *)
let engine (t : t) = t.engine

(** Snapshot of the process-global nerpa.* Obs counters (zeros while
    collection is disabled). *)
let stats (_t : t) =
  {
    txns = Obs.Counter.value m_txns;
    entries_written = Obs.Counter.value m_entries;
    digests_consumed = Obs.Counter.value m_digests;
    groups_updated = Obs.Counter.value m_groups;
  }

(** Pre-flight report: output relations no rule writes and digest
    relations no rule reads — usually authoring mistakes. *)
let preflight (t : t) : string list =
  let written rel =
    List.exists (fun (r : Ast.rule) -> String.equal r.head.hrel rel)
      t.program.rules
  in
  let read rel =
    List.exists
      (fun (r : Ast.rule) ->
        List.exists (fun (dep, _) -> String.equal dep rel)
          (Ast.body_dependencies r))
      t.program.rules
  in
  List.filter_map
    (fun (d : Ast.rel_decl) ->
      match d.role with
      | Ast.Output
        when (not (written d.rname))
             && not
                  (List.exists
                     (fun (m : Codegen.mapping) ->
                       String.equal m.rel_name d.rname && m.is_default)
                     t.mappings) ->
        Some (Printf.sprintf "output relation %s has no rules" d.rname)
      | Ast.Input
        when List.exists (fun (_, dd) -> dd == d) t.digest_rel_of_name
             && not (read d.rname) ->
        Some (Printf.sprintf "digest relation %s is never read" d.rname)
      | _ -> None)
    t.program.decls
