(* The Nerpa controller: the state-synchronisation loop tying the three
   planes together (Fig. 4 of the paper).

   Since the transport refactor the controller is split in two:

   - a *step core* ({!Step}, {!step}): consumes one plane event
     (monitor batch, digest lists, switch up/down) and returns the
     commands to execute (write batches, digest acks, reconciliations).
     It commits DL transactions but performs no transport I/O, so its
     decisions are testable without any link in place;
   - a *driver loop* ({!sync}): polls the links, feeds events to the
     step core, and executes its commands — owning every
     failure-handling policy: bounded retry with exponential backoff on
     transient write errors, digest-redelivery dedup by [list_id], and
     full state reconciliation when a switch reconnects (dump via
     P4Runtime reads, diff against the engine's outputs, emit
     corrective deletes/inserts).

   Responsibilities carried over from the pre-transport controller:
   convert monitor batches into DL transactions; translate output
   deltas into atomic P4Runtime write batches (deletes first, so that
   re-keyed entries modify cleanly); drain data-plane digests and feed
   them back as DL insertions until quiescence; maintain multicast
   group membership from the MulticastGroup relation. *)

open Dl

exception Controller_error of string

let error fmt = Format.kasprintf (fun s -> raise (Controller_error s)) fmt

type stats = {
  txns : int;             (* DL transactions committed *)
  entries_written : int;  (* table entries inserted/deleted *)
  digests_consumed : int;
  groups_updated : int;
}

(* Observability (metric names are a public contract, see README).
   These aggregate across controllers sharing the process; the [stats]
   accessor reports this controller's own counts. *)
let m_txns = Obs.Counter.create "nerpa.txns"
let m_entries = Obs.Counter.create "nerpa.entries_written"
let m_digests = Obs.Counter.create "nerpa.digests_consumed"
let m_groups = Obs.Counter.create "nerpa.groups_updated"
let m_syncs = Obs.Counter.create "nerpa.sync.count"
let m_iterations = Obs.Counter.create "nerpa.sync.iterations"
let m_monitor_batches = Obs.Counter.create "nerpa.sync.monitor_batches"
let m_digest_lists = Obs.Counter.create "nerpa.sync.digest_lists"
let m_dup_digests = Obs.Counter.create "nerpa.digest.duplicates"
let m_retries = Obs.Counter.create "nerpa.retry.count"
let m_retry_gaveup = Obs.Counter.create "nerpa.retry.gaveup"
let m_reconciles = Obs.Counter.create "nerpa.reconcile.count"
let m_corrections = Obs.Counter.create "nerpa.reconcile.corrections"
let m_resyncs = Obs.Counter.create "nerpa.resync.count"
let m_resync_corr = Obs.Counter.create "nerpa.resync.corrections"
let m_flow_deltas = Obs.Counter.create "nerpa.flow.deltas"
let m_flow_rules = Obs.Counter.create "nerpa.flow.rules"
let m_flow_resyncs = Obs.Counter.create "nerpa.flow.resyncs"
let m_xpublishes = Obs.Counter.create "nerpa.exchange.publishes"
let m_xrows_out = Obs.Counter.create "nerpa.exchange.rows_published"
let m_xrows_in = Obs.Counter.create "nerpa.exchange.rows_applied"
let m_xresyncs = Obs.Counter.create "nerpa.exchange.resyncs"
let h_sync = Obs.Histogram.create ~unit_:"us" "nerpa.sync"
let h_write_batch = Obs.Histogram.create ~unit_:"entries" "nerpa.write_batch"
let h_backoff = Obs.Histogram.create ~unit_:"us" "nerpa.retry.backoff_us"
let h_reconcile = Obs.Histogram.create ~unit_:"us" "nerpa.reconcile"

module IntSet = Set.Make (Int)

(* An attached incremental flow compiler for one switch: every write
   batch the driver knows the switch applied is mirrored into the
   {!Ofp4.Compile.State} as a Z-set delta, and the resulting flow-rule
   delta is handed to [fp_push].  When a write outcome is ambiguous
   (the paths that mark the switch dirty) the programmer goes stale and
   the next successful reconciliation rebuilds the state from the local
   switch object, pushing the diff wholesale. *)
type flow_programmer = {
  fp_switch : P4.Switch.t;
  mutable fp_state : Ofp4.Compile.State.t;
  fp_push : Ofp4.Openflow.flow_delta -> unit;
  mutable fp_stale : bool;
}

(* Per-switch connection state owned by the driver. *)
type sw = {
  sw_name : string;
  sw_link : Links.p4_link;
  sw_info : P4.P4info.t;
  mutable sw_up : bool;
  mutable sw_dirty : bool;
      (* true when this switch may have missed or misapplied writes
         (link failure, retry exhaustion): schedule a reconcile *)
  mutable sw_seen : IntSet.t;  (* digest list_ids already applied *)
  mutable sw_fp : flow_programmer option;
}

(* Every path that marks a switch dirty also invalidates its flow
   programmer: the delta feed only stays truthful while each applied
   batch was observed applied. *)
let mark_dirty (sw : sw) : unit =
  sw.sw_dirty <- true;
  match sw.sw_fp with Some fp -> fp.fp_stale <- true | None -> ()

let feed_flow_programmer (sw : sw) (updates : P4runtime.update list) : unit =
  match sw.sw_fp with
  | None -> ()
  | Some fp when fp.fp_stale -> () (* resynced wholesale on reconcile *)
  | Some fp ->
    let tbl : (string, (P4.Entry.t * int) list) Hashtbl.t = Hashtbl.create 4 in
    let order = ref [] in
    List.iter
      (fun (u : P4runtime.update) ->
        match u.entity with
        | P4runtime.MulticastGroupEntry _ -> ()
        | P4runtime.TableEntry te ->
          let table, entry = P4runtime.to_entry sw.sw_info te in
          let w =
            match u.utype with
            | P4runtime.Delete -> -1
            | P4runtime.Insert | P4runtime.Modify -> 1
          in
          (match Hashtbl.find_opt tbl table with
          | None ->
            order := table :: !order;
            Hashtbl.add tbl table [ (entry, w) ]
          | Some ops -> Hashtbl.replace tbl table ((entry, w) :: ops)))
      updates;
    if !order <> [] then begin
      let deltas =
        List.rev_map (fun tn -> (tn, List.rev (Hashtbl.find tbl tn))) !order
      in
      let d = Ofp4.Compile.State.apply_delta fp.fp_state deltas in
      let n = Ofp4.Openflow.delta_size d in
      if n > 0 then begin
        Obs.Counter.incr m_flow_deltas;
        Obs.Counter.add m_flow_rules n;
        fp.fp_push d
      end
    end

let resync_flow_programmer (sw : sw) : unit =
  match sw.sw_fp with
  | None -> ()
  | Some fp when not fp.fp_stale -> ()
  | Some fp ->
    Obs.Counter.incr m_flow_resyncs;
    let st = Ofp4.Compile.State.create fp.fp_switch in
    let d =
      Ofp4.Openflow.diff
        ~old_flows:(Ofp4.Compile.State.flows fp.fp_state).Ofp4.Openflow.flows
        ~new_flows:(Ofp4.Compile.State.flows st).Ofp4.Openflow.flows
    in
    fp.fp_state <- st;
    fp.fp_stale <- false;
    let n = Ofp4.Openflow.delta_size d in
    if n > 0 then begin
      Obs.Counter.incr m_flow_deltas;
      Obs.Counter.add m_flow_rules n;
      fp.fp_push d
    end

(* ---------------- cross-shard exchange state ---------------- *)

(* A sharded fleet exchanges its data-plane-learned relations (the
   digest-fed inputs) through per-shard exchange stores ({!Xrel}):
   each controller publishes its own contributions to its own shard's
   store and subscribes to every peer's store over the ordinary
   monitor machinery, so the exchange inherits the codec, pipelining
   and resync semantics of the management plane.  [exchange] is the
   wiring — built by [Cluster] (socket links derived from a shard
   map, or direct links in the in-process harness). *)
type exchange = {
  ex_shard : int;  (* this controller's shard id *)
  ex_publish : Links.mgmt_link;  (* own shard's exchange store *)
  ex_peers : (int * Links.mgmt_link) list;  (* peer stores, by shard *)
}

(* A mirrored claim: one row some peer's store publishes.  [xm_active]
   is whether the row currently contributes to the engine — a fresher
   learn for the same key suppresses a claim without dropping it (the
   peer's store still holds the row), which is what stops a later
   snapshot resync from resurrecting displaced state. *)
type xclaim = { xm_row : Row.t; mutable xm_active : bool }

type xstate = {
  xc : exchange;
  x_rels : (string, unit) Hashtbl.t;  (* exchanged relation names *)
  x_local : (string * string, Row.t) Hashtbl.t;
      (* (rel, row text): this shard's own published contributions *)
  x_mirror : (int * string * string, xclaim) Hashtbl.t;
      (* (peer shard, rel, row text): what each peer's store holds *)
  mutable x_queue : (string * string * int) list;
      (* publish deltas not yet flushed, newest first *)
  mutable x_pub_dirty : bool;
      (* full reset-publish needed (startup, or a publish-link
         reconnect: the store may be fresh, or hold stale rows of a
         previous incarnation) *)
  x_peer_dirty : (int, bool) Hashtbl.t;  (* peer needs a snapshot resync *)
}

type t = {
  mgmt : Links.mgmt_link;
  mgmt_ctl : Transport.ctl option;
      (* fault-injection handle when the endpoint wraps the management
         plane in [Faulty] *)
  mutable mgmt_dirty : bool;
      (* true when monitor batches may have been lost (poll failure or a
         reconnect edge): resync before trusting the next poll *)
  p4_ctls : (string * Transport.ctl) list;
  engine : Engine.t;
  program : Ast.program;
  mappings : Codegen.mapping list;
  input_rel_of_table : (string * Ast.rel_decl) list; (* OVSDB table -> decl *)
  digest_rel_of_name : (string * Ast.rel_decl) list; (* digest name -> decl *)
  exchange : xstate option;  (* cross-shard exchange, when clustered *)
  sws : sw list;
  (* When a pool with workers is attached, the driver services the
     switch links as parallel tasks — polls, per-switch command
     batches, reconciliations — while the step core stays
     single-threaded on the calling domain. *)
  pool : Pool.t option;
  (* digest relation -> key column indices for last-writer-wins
     replacement (e.g. MAC mobility: a newly learned (vlan, mac)
     retracts the previous port binding) *)
  digest_replace : (string * int list) list;
  max_iterations : int;
  retry_limit : int;
  (* per-controller counts; [sync]'s return value and [stats] must not
     depend on whether Obs collection is enabled.  [nentries] is
     atomic: write batches for different switches execute on pool
     domains concurrently. *)
  mutable ntxns : int;
  nentries : int Atomic.t;
  mutable ndigests : int;
  mutable ngroups : int;
  (* deltas committed during the current sync iteration, for the
     quiescence diagnostic *)
  mutable iter_deltas : (string * Zset.t) list;
}

(* ---------------- the step core ---------------- *)

module Step = struct
  type event =
    | Monitor_batch of Ovsdb.Db.table_updates
    | Digest_lists of string * P4runtime.digest_list list
    | Switch_up of string
    | Switch_down of string

  type command =
    | Write of string * P4runtime.update list
    | Ack of string * int
    | Reconcile of string
end

let find_sw (t : t) name : sw =
  match List.find_opt (fun s -> String.equal s.sw_name name) t.sws with
  | Some s -> s
  | None -> error "unknown switch %s" name

(* Run the per-switch tasks on the pool when one is attached; inline
   otherwise.  Results come back positionally either way. *)
let pool_map (t : t) (tasks : (unit -> 'a) array) : 'a array =
  match t.pool with
  | Some pool -> Pool.run pool tasks
  | None -> Array.map (fun f -> f ()) tasks

(* Accumulate commit deltas per relation as Z-set unions, instead of
   concatenating per-commit delta lists (which grew quadratically over
   a sync's feedback iterations). *)
let merge_deltas (acc : (string * Zset.t) list) (ds : (string * Zset.t) list) :
    (string * Zset.t) list =
  List.fold_left
    (fun acc (rel, z) ->
      match List.assoc_opt rel acc with
      | Some z0 -> (rel, Zset.union z0 z) :: List.remove_assoc rel acc
      | None -> (rel, z) :: acc)
    acc ds

(* Record one commit's digest-relation deltas for cross-shard
   publication.  +row: a genuinely new local learn (an insert the
   engine absorbed silently never shows up in commit deltas) — claim
   it and queue its publication.  -row: a last-writer-wins
   displacement; when the victim was our own claim, queue its
   retraction toward the fleet; when it was a peer's, suppress that
   claim (see [xclaim]). *)
let exchange_capture (t : t) (deltas : (string * Zset.t) list) : unit =
  match t.exchange with
  | None -> ()
  | Some xs ->
    List.iter
      (fun (rel, dz) ->
        if Hashtbl.mem xs.x_rels rel then
          Zset.iter
            (fun row w ->
              let text = Xrel.row_text row in
              if w > 0 then begin
                if not (Hashtbl.mem xs.x_local (rel, text)) then begin
                  Hashtbl.replace xs.x_local (rel, text) row;
                  xs.x_queue <- (rel, text, 1) :: xs.x_queue
                end
              end
              else if Hashtbl.mem xs.x_local (rel, text) then begin
                Hashtbl.remove xs.x_local (rel, text);
                xs.x_queue <- (rel, text, -1) :: xs.x_queue
              end
              else
                List.iter
                  (fun (s, _) ->
                    match Hashtbl.find_opt xs.x_mirror (s, rel, text) with
                    | Some c -> c.xm_active <- false
                    | None -> ())
                  xs.xc.ex_peers)
            dz)
      deltas

(* Translate one commit's deltas into per-switch write batches.
   Deletions first so that an entry whose action arguments changed is
   removed before its replacement is inserted. *)
let write_commands (t : t) (deltas : (string * Zset.t) list) :
    Step.command list =
  let outputs = Engine.output_deltas t.engine deltas in
  if outputs = [] then []
  else begin
    (* Multicast groups: recompute the membership of touched groups from
       the engine's full relation contents. *)
    let mcast_updates =
      match List.assoc_opt "MulticastGroup" outputs with
      | None -> []
      | Some dz ->
        let touched =
          Zset.fold
            (fun row _ acc ->
              let g = Bridge.as_bit_value (Row.get row 0) in
              if List.mem g acc then acc else g :: acc)
            dz []
        in
        List.map
          (fun g ->
            let ports =
              List.map
                (fun row -> Bridge.as_bit_value (Row.get row 1))
                (Engine.query t.engine "MulticastGroup" ~positions:[ 0 ]
                   ~key:[ Value.bit 16 g ])
            in
            Obs.Counter.incr m_groups;
            t.ngroups <- t.ngroups + 1;
            P4runtime.set_multicast ~group:g ~ports:(List.sort Int64.compare ports))
          touched
    in
    List.filter_map
      (fun sw ->
        let dels = ref [] and inss = ref [] in
        List.iter
          (fun (rel, dz) ->
            match
              List.find_opt
                (fun (m : Codegen.mapping) -> m.rel_name = rel)
                t.mappings
            with
            | None -> () (* MulticastGroup handled above *)
            | Some m ->
              Zset.iter
                (fun row w ->
                  let entry = Bridge.entry_of_row sw.sw_info m row in
                  if w > 0 then inss := P4runtime.insert entry :: !inss
                  else dels := P4runtime.delete entry :: !dels)
                dz)
          outputs;
        let updates = List.rev !dels @ List.rev !inss @ mcast_updates in
        if updates = [] then None else Some (Step.Write (sw.sw_name, updates)))
      t.sws
  end

(* ---------------- management plane -> engine ---------------- *)

let step_monitor_batch (t : t) (batch : Ovsdb.Db.table_updates) :
    Step.command list =
  let txn = Engine.transaction t.engine in
  List.iter
    (fun (table, rows) ->
      match List.assoc_opt table t.input_rel_of_table with
      | None -> ()
      | Some decl ->
        List.iter
          (fun (uuid, (upd : Ovsdb.Db.row_update)) ->
            (match upd.before with
            | Some row ->
              Engine.delete txn decl.Ast.rname (Bridge.row_of_ovsdb decl uuid row)
            | None -> ());
            match upd.after with
            | Some row ->
              Engine.insert txn decl.Ast.rname (Bridge.row_of_ovsdb decl uuid row)
            | None -> ())
          rows)
    batch;
  let deltas = Engine.commit txn in
  t.ntxns <- t.ntxns + 1;
  Obs.Counter.incr m_txns;
  t.iter_deltas <- merge_deltas t.iter_deltas deltas;
  write_commands t deltas

(* ---------------- data plane -> engine (feedback loop) -------------- *)

let step_digest_lists (t : t) (sw : sw)
    (dls : P4runtime.digest_list list) : Step.command list =
  let info = sw.sw_info in
  List.concat_map
    (fun (dl : P4runtime.digest_list) ->
      let dinfo =
        match P4.P4info.find_digest_by_id info dl.digest_id with
        | Some d -> d
        | None -> error "unknown digest id %d" dl.digest_id
      in
      if IntSet.mem dl.list_id sw.sw_seen then begin
        (* a redelivered list we already applied: just re-ack *)
        Obs.Counter.incr m_dup_digests;
        [ Step.Ack (sw.sw_name, dl.list_id) ]
      end
      else begin
        sw.sw_seen <- IntSet.add dl.list_id sw.sw_seen;
        Obs.Counter.incr m_digest_lists;
        match List.assoc_opt dinfo.digest_name t.digest_rel_of_name with
        | None -> [ Step.Ack (sw.sw_name, dl.list_id) ]
        | Some decl ->
          let txn = Engine.transaction t.engine in
          let replace_keys = List.assoc_opt decl.Ast.rname t.digest_replace in
          (* rows inserted earlier in this same transaction, by key:
             the engine query below only sees committed state, so
             intra-batch replacements must be tracked here (one list
             can carry both A@1 and A@2 when polls were delayed) *)
          let pending = ref [] in
          List.iter
            (fun values ->
              let row = Bridge.row_of_digest decl values in
              (match replace_keys with
              | None -> ()
              | Some idxs ->
                let key = List.map (Row.get row) idxs in
                (* last-writer-wins: retract rows agreeing on the keys.
                   The indexed query touches only rows sharing the key,
                   not the whole relation. *)
                List.iter
                  (fun old ->
                    if not (Row.equal old row) then
                      Engine.delete txn decl.Ast.rname old)
                  (Engine.query t.engine decl.Ast.rname ~positions:idxs
                     ~key);
                (match List.assoc_opt key !pending with
                | Some prev when not (Row.equal prev row) ->
                  Engine.delete txn decl.Ast.rname prev
                | _ -> ());
                pending := (key, row) :: List.remove_assoc key !pending);
              Engine.insert txn decl.Ast.rname row;
              Obs.Counter.incr m_digests;
              t.ndigests <- t.ndigests + 1)
            dl.entries;
          let deltas = Engine.commit txn in
          t.ntxns <- t.ntxns + 1;
          Obs.Counter.incr m_txns;
          t.iter_deltas <- merge_deltas t.iter_deltas deltas;
          exchange_capture t deltas;
          write_commands t deltas @ [ Step.Ack (sw.sw_name, dl.list_id) ]
      end)
    dls

(** Process one plane event and return the commands to execute.  The
    step core commits DL transactions and updates controller state but
    performs no transport I/O — every interaction with a peer is
    returned as a {!Step.command} for the driver (or a test harness) to
    execute. *)
let step (t : t) (ev : Step.event) : Step.command list =
  match ev with
  | Step.Monitor_batch batch -> step_monitor_batch t batch
  | Step.Digest_lists (name, dls) -> step_digest_lists t (find_sw t name) dls
  | Step.Switch_down name ->
    let sw = find_sw t name in
    sw.sw_up <- false;
    []
  | Step.Switch_up name ->
    let sw = find_sw t name in
    sw.sw_up <- true;
    (* the switch may have missed writes (or lost state) while away:
       always resynchronise *)
    mark_dirty sw;
    [ Step.Reconcile name ]

(* ---------------- driver: command execution ---------------- *)

(* Send a write batch with bounded retry on transient failures.  The
   backoff is recorded (it would be a sleep on a real channel; the
   in-process links fail deterministically, so waiting adds nothing).
   On a first-attempt rejection the switch state is known-unchanged and
   the error is surfaced; after a transient the same rejection can be
   our own retry colliding with a partially applied batch, so the
   switch is marked dirty for reconciliation instead. *)
(* [first_result], when given, is the already-received outcome of
   attempt 0 — the pipelined batch path sends the Write as part of a
   [send_many] and hands the response here, so retries and rejection
   handling stay identical to the serial path. *)
let write_with_retry ?first_result (t : t) (sw : sw)
    (updates : P4runtime.update list) : unit =
  Obs.Histogram.observe h_write_batch (float_of_int (List.length updates));
  let nentries =
    List.length
      (List.filter
         (fun (u : P4runtime.update) ->
           match u.entity with
           | P4runtime.TableEntry _ -> true
           | P4runtime.MulticastGroupEntry _ -> false)
         updates)
  in
  let rec attempt result n backoff_us =
    let result =
      match result with
      | Some r -> r
      | None -> Transport.send sw.sw_link (P4runtime.Wire.Write updates)
    in
    match result with
    | Ok (P4runtime.Wire.Write_reply (Ok ())) ->
      Obs.Counter.add m_entries nentries;
      ignore (Atomic.fetch_and_add t.nentries nentries);
      feed_flow_programmer sw updates
    | Ok (P4runtime.Wire.Write_reply (Error msg))
    | Ok (P4runtime.Wire.Error_reply msg) ->
      if n = 0 then error "switch %s rejected updates: %s" sw.sw_name msg
      else mark_dirty sw
    | Ok _ -> error "switch %s: protocol mismatch on write" sw.sw_name
    | Error (Transport.Closed _) ->
      (* link down: the reconnect reconciliation will catch it up *)
      mark_dirty sw
    | Error (Transport.Transient _) ->
      if n + 1 >= t.retry_limit then begin
        Obs.Counter.incr m_retry_gaveup;
        mark_dirty sw
      end
      else begin
        Obs.Counter.incr m_retries;
        Obs.Histogram.observe h_backoff backoff_us;
        attempt None (n + 1) (backoff_us *. 2.)
      end
  in
  attempt first_result 0 100.

(* ---------------- driver: reconnect reconciliation ---------------- *)

exception Recon_fail of string

(* Reconcile a switch against the engine: dump its tables and multicast
   groups over the link, diff them against what the mappings say should
   be installed, and write corrective deletes/inserts.  Any link
   failure aborts the attempt and leaves the switch dirty; the next
   sync retries. *)
let reconcile_sw (t : t) (sw : sw) : unit =
  Obs.Counter.incr m_reconciles;
  Obs.Histogram.time h_reconcile @@ fun () ->
  let send req =
    match Transport.send sw.sw_link req with
    | Ok (P4runtime.Wire.Error_reply msg) -> raise (Recon_fail msg)
    | Ok resp -> resp
    | Error e -> raise (Recon_fail (Transport.error_to_string e))
  in
  match
    (* One pipelined batch covers the whole dump: every table read plus
       the group read go out before the first response is awaited. *)
    let read_results =
      let reqs =
        List.map
          (fun (ti : P4.P4info.table_info) ->
            P4runtime.Wire.Read_table ti.table_id)
          sw.sw_info.tables
        @ [ P4runtime.Wire.Read_groups ]
      in
      List.map
        (function
          | Ok (P4runtime.Wire.Error_reply msg) -> raise (Recon_fail msg)
          | Ok resp -> resp
          | Error e -> raise (Recon_fail (Transport.error_to_string e)))
        (Transport.send_many sw.sw_link reqs)
    in
    let actual_entries, actual_groups =
      match List.rev read_results with
      | P4runtime.Wire.Groups gs :: tables_rev ->
        let entries =
          List.concat_map
            (function
              | P4runtime.Wire.Table es -> es
              | _ -> raise (Recon_fail "protocol mismatch on read_table"))
            (List.rev tables_rev)
        in
        (entries, List.map (fun (g, ps) -> (g, List.sort Int64.compare ps)) gs)
      | _ -> raise (Recon_fail "protocol mismatch on read_groups")
    in
    let desired_entries =
      List.concat_map
        (fun (m : Codegen.mapping) ->
          List.map
            (Bridge.entry_of_row sw.sw_info m)
            (Engine.relation_rows t.engine m.rel_name))
        t.mappings
    in
    let desired_groups =
      match Ast.find_decl t.program "MulticastGroup" with
      | None -> []
      | Some _ ->
        List.fold_left
          (fun acc row ->
            let g = Bridge.as_bit_value (Row.get row 0) in
            let p = Bridge.as_bit_value (Row.get row 1) in
            match List.assoc_opt g acc with
            | Some ps -> (g, p :: ps) :: List.remove_assoc g acc
            | None -> (g, [ p ]) :: acc)
          []
          (Engine.relation_rows t.engine "MulticastGroup")
        |> List.map (fun (g, ps) -> (g, List.sort Int64.compare ps))
    in
    let dels =
      List.filter (fun e -> not (List.mem e desired_entries)) actual_entries
    in
    let inss =
      List.filter (fun e -> not (List.mem e actual_entries)) desired_entries
    in
    let group_fixes =
      List.filter_map
        (fun (g, ports) ->
          if List.assoc_opt g actual_groups = Some ports then None
          else Some (P4runtime.set_multicast ~group:g ~ports))
        desired_groups
      @ List.filter_map
          (fun (g, _) ->
            if List.mem_assoc g desired_groups then None
            else Some (P4runtime.set_multicast ~group:g ~ports:[]))
          actual_groups
    in
    let updates =
      List.map P4runtime.delete dels
      @ List.map P4runtime.insert inss
      @ group_fixes
    in
    if updates <> [] then begin
      Obs.Counter.add m_corrections (List.length updates);
      match send (P4runtime.Wire.Write updates) with
      | P4runtime.Wire.Write_reply (Ok ()) -> feed_flow_programmer sw updates
      | P4runtime.Wire.Write_reply (Error msg) -> raise (Recon_fail msg)
      | _ -> raise (Recon_fail "protocol mismatch on write")
    end
  with
  | () ->
    sw.sw_dirty <- false;
    (* the switch now holds exactly the engine's desired entries, so a
       stale programmer can rebuild from the local switch object *)
    resync_flow_programmer sw
  | exception Recon_fail _ ->
    (* transient: stay dirty, retried at the next sync *)
    mark_dirty sw

let exec_command (t : t) (cmd : Step.command) : unit =
  match cmd with
  | Step.Write (name, updates) -> write_with_retry t (find_sw t name) updates
  | Step.Ack (name, list_id) -> (
    let sw = find_sw t name in
    match Transport.send sw.sw_link (P4runtime.Wire.Ack list_id) with
    | Ok P4runtime.Wire.Acked -> ()
    | Ok (P4runtime.Wire.Error_reply msg) ->
      error "switch %s: ack failed: %s" name msg
    | Ok _ -> error "switch %s: protocol mismatch on ack" name
    | Error _ ->
      (* a lost ack leaves the list unacked: it will be redelivered and
         the dedup layer re-acks it *)
      ())
  | Step.Reconcile name -> reconcile_sw t (find_sw t name)

(* Execute one switch's commands in order.  Runs of consecutive
   Write/Ack commands go over the link as one pipelined batch
   ({!Transport.send_many}); a [Reconcile] breaks the run because it
   issues its own reads and writes.  Per-command semantics match the
   serial path: each Write's first-attempt response feeds
   {!write_with_retry}, and acks tolerate link failure. *)
let req_of_cmd = function
  | Step.Write (_, updates) -> P4runtime.Wire.Write updates
  | Step.Ack (_, list_id) -> P4runtime.Wire.Ack list_id
  | Step.Reconcile _ -> assert false

(* Consume one pipelined result against the command that produced it,
   with the serial path's semantics. *)
let handle_batch_result (t : t) (sw : sw) cmd result =
  match cmd with
  | Step.Write (_, updates) -> write_with_retry ~first_result:result t sw updates
  | Step.Ack (name, _) -> (
    match result with
    | Ok P4runtime.Wire.Acked -> ()
    | Ok (P4runtime.Wire.Error_reply msg) ->
      error "switch %s: ack failed: %s" name msg
    | Ok _ -> error "switch %s: protocol mismatch on ack" name
    | Error _ -> ())
  | Step.Reconcile _ -> assert false

let exec_sw_cmds (t : t) (cmds : Step.command list) : unit =
  let flush = function
    | [] -> ()
    | [ cmd ] -> exec_command t cmd
    | run ->
      let sw =
        match run with
        | (Step.Write (n, _) | Step.Ack (n, _)) :: _ -> find_sw t n
        | _ -> assert false
      in
      List.iter2
        (handle_batch_result t sw)
        run
        (Transport.send_many sw.sw_link (List.map req_of_cmd run))
  in
  let rec go run = function
    | [] -> flush (List.rev run)
    | (Step.Reconcile _ as cmd) :: rest ->
      flush (List.rev run);
      exec_command t cmd;
      go [] rest
    | cmd :: rest -> go (cmd :: run) rest
  in
  go [] cmds

(* Execute one switch's commands, then poll its digests — the poll
   rides the final pipelined batch, so an iteration that wrote to a
   switch pays no extra round trip for its digest poll.  A trailing
   [Reconcile] (or an empty command list) leaves the poll as its own
   single-request exchange. *)
let exec_sw_cmds_polling (t : t) (sw : sw) (cmds : Step.command list) :
    (P4runtime.Wire.response, Transport.error) result =
  (* split at the last Reconcile: the prefix runs as usual, the
     trailing Write/Ack run shares its batch with the poll *)
  let tail_run, prefix =
    let rec take acc = function
      | ((Step.Write _ | Step.Ack _) as c) :: rest -> take (c :: acc) rest
      | rest -> (acc, List.rev rest)
    in
    take [] (List.rev cmds)
  in
  exec_sw_cmds t prefix;
  let reqs = List.map req_of_cmd tail_run @ [ P4runtime.Wire.Poll_digests ] in
  let rec split_last acc = function
    | [ last ] -> (List.rev acc, last)
    | r :: rest -> split_last (r :: acc) rest
    | [] -> assert false
  in
  let cmd_results, poll =
    split_last [] (Transport.send_many sw.sw_link reqs)
  in
  List.iter2 (handle_batch_result t sw) tail_run cmd_results;
  poll

(* Execute a step's commands.  Every command targets one switch, and
   commands for different switches are independent (separate links,
   separate switch state; shared controller state is atomic or
   read-only on this path) — so they fan out per switch on the pool,
   preserving each switch's own command order.  A task failure
   surfaces as the lowest-switch-index exception, matching what serial
   execution would raise first. *)
let exec_commands t cmds =
  match cmds with
  | [] -> ()
  | [ cmd ] -> exec_command t cmd
  | cmds ->
    let sw_of = function
      | Step.Write (n, _) | Step.Ack (n, _) | Step.Reconcile n -> n
    in
    (* Group by switch, keeping first-appearance switch order and
       per-switch command order. *)
    let order = ref [] and by_sw = Hashtbl.create 8 in
    List.iter
      (fun cmd ->
        let name = sw_of cmd in
        match Hashtbl.find_opt by_sw name with
        | Some r -> r := cmd :: !r
        | None ->
          order := name :: !order;
          Hashtbl.add by_sw name (ref [ cmd ]))
      cmds;
    let tasks =
      List.rev !order
      |> List.map (fun name ->
             let cmds = List.rev !(Hashtbl.find by_sw name) in
             fun () -> exec_sw_cmds t cmds)
      |> Array.of_list
    in
    ignore (pool_map t tasks)

(* ---------------- driver: monitor resync ---------------- *)

(* Apply a management-plane snapshot: for every OVSDB-backed input
   relation, diff the snapshot's rows against the engine's current
   contents and commit the correction as ONE transaction.  Digest-fed
   input relations are untouched — they are data-plane state, not
   database contents.  Only a non-empty correction counts as a
   transaction (so a clean resync leaves [sync]'s quiescence
   undisturbed). *)
let apply_resync (t : t) (snap : Ovsdb.Db.table_updates) : unit =
  let txn = Engine.transaction t.engine in
  let ncorr = ref 0 in
  List.iter
    (fun (table, decl) ->
      let want =
        match List.assoc_opt table snap with
        | None -> []
        | Some rows ->
          List.filter_map
            (fun (uuid, (upd : Ovsdb.Db.row_update)) ->
              Option.map (Bridge.row_of_ovsdb decl uuid) upd.after)
            rows
      in
      let have = Engine.relation_rows t.engine decl.Ast.rname in
      List.iter
        (fun row ->
          if not (List.exists (Row.equal row) want) then begin
            incr ncorr;
            Engine.delete txn decl.Ast.rname row
          end)
        have;
      List.iter
        (fun row ->
          if not (List.exists (Row.equal row) have) then begin
            incr ncorr;
            Engine.insert txn decl.Ast.rname row
          end)
        want)
    t.input_rel_of_table;
  let deltas = Engine.commit txn in
  Obs.Counter.add m_resync_corr !ncorr;
  if deltas <> [] then begin
    t.ntxns <- t.ntxns + 1;
    Obs.Counter.incr m_txns;
    t.iter_deltas <- merge_deltas t.iter_deltas deltas;
    exec_commands t (write_commands t deltas)
  end

(* Re-request the database's full state and correct the engine's inputs
   (the ROADMAP's monitor resync).  On success the link's pending
   connectivity edges are discarded: the snapshot was taken over the
   fresh connection, so the reconnect it may have raised is already
   accounted for.  On failure the link stays dirty and the next
   iteration (or sync) retries. *)
let mgmt_resync (t : t) : unit =
  Obs.Counter.incr m_resyncs;
  match Transport.send t.mgmt Links.Resync with
  | Ok (Links.Snapshot snap) ->
    ignore (Transport.events t.mgmt);
    apply_resync t snap;
    t.mgmt_dirty <- false
  | Ok _ -> error "management link: protocol mismatch on resync"
  | Error _ -> ()

(* ---------------- driver: cross-shard exchange ---------------- *)

(* Apply signed (shard, rel, row text, ±1) exchange deltas to the
   engine as one transaction.  An insert is the freshest information
   about its key, so it displaces whatever same-key rows the engine
   holds — retracting our own claim toward the fleet, suppressing a
   peer's.  A retraction removes the row only when the retracting
   peer's claim is the one the engine is actually carrying. *)
let exchange_apply (t : t) (xs : xstate)
    (deltas : (int * string * string * int) list) : unit =
  let deltas =
    List.filter (fun (_, rel, _, _) -> Hashtbl.mem xs.x_rels rel) deltas
  in
  if deltas <> [] then begin
    let txn = Engine.transaction t.engine in
    (* same-key rows inserted earlier in this same transaction: the
       engine query below only sees committed state *)
    let fresh = Hashtbl.create 8 in
    let displace rel row old =
      if not (Row.equal old row) then begin
        Engine.delete txn rel old;
        let otext = Xrel.row_text old in
        if Hashtbl.mem xs.x_local (rel, otext) then begin
          Hashtbl.remove xs.x_local (rel, otext);
          xs.x_queue <- (rel, otext, -1) :: xs.x_queue
        end
        else
          List.iter
            (fun (s, _) ->
              match Hashtbl.find_opt xs.x_mirror (s, rel, otext) with
              | Some c -> c.xm_active <- false
              | None -> ())
            xs.xc.ex_peers
      end
    in
    List.iter
      (fun (shard, rel, text, w) ->
        let row =
          try Xrel.row_of_text t.program rel text
          with Failure msg -> error "exchange: %s" msg
        in
        if w > 0 then begin
          (match List.assoc_opt rel t.digest_replace with
          | None -> ()
          | Some idxs ->
            let key = List.map (Row.get row) idxs in
            List.iter (displace rel row)
              (Engine.query t.engine rel ~positions:idxs ~key);
            (match Hashtbl.find_opt fresh (rel, key) with
            | Some prev -> displace rel row prev
            | None -> ());
            Hashtbl.replace fresh (rel, key) row);
          Engine.insert txn rel row;
          Obs.Counter.incr m_xrows_in;
          Hashtbl.replace xs.x_mirror (shard, rel, text)
            { xm_row = row; xm_active = true }
        end
        else
          match Hashtbl.find_opt xs.x_mirror (shard, rel, text) with
          | None -> ()
          | Some c ->
            Hashtbl.remove xs.x_mirror (shard, rel, text);
            if c.xm_active && not (Hashtbl.mem xs.x_local (rel, text)) then
              Engine.delete txn rel row)
      deltas;
    let ds = Engine.commit txn in
    if ds <> [] then begin
      t.ntxns <- t.ntxns + 1;
      Obs.Counter.incr m_txns;
      t.iter_deltas <- merge_deltas t.iter_deltas ds;
      exec_commands t (write_commands t ds)
    end
  end

(* Full snapshot resync against one peer's store (first contact, and
   any reconnect edge): diff the snapshot against the mirror and apply
   only the difference.  A row present on both sides is untouched —
   in particular a suppressed claim is not re-applied, so state we
   deliberately displaced cannot resurrect through a resync. *)
let exchange_resync (t : t) (xs : xstate) (shard : int)
    (link : Links.mgmt_link) : unit =
  Obs.Counter.incr m_xresyncs;
  match Transport.send link Links.Resync with
  | Ok (Links.Snapshot snap) ->
    ignore (Transport.events link);
    let present = Hashtbl.create 64 in
    List.iter
      (fun (s, rel, text, w) ->
        if s = shard && w > 0 then Hashtbl.replace present (rel, text) ())
      (Xrel.deltas_of_updates snap);
    let gone =
      Hashtbl.fold
        (fun (s, rel, text) _ acc ->
          if s = shard && not (Hashtbl.mem present (rel, text)) then
            (s, rel, text, -1) :: acc
          else acc)
        xs.x_mirror []
    in
    let fresh =
      Hashtbl.fold
        (fun (rel, text) () acc ->
          if Hashtbl.mem xs.x_mirror (shard, rel, text) then acc
          else (shard, rel, text, 1) :: acc)
        present []
    in
    exchange_apply t xs (gone @ fresh);
    Hashtbl.replace xs.x_peer_dirty shard false
  | Ok _ -> error "exchange link: protocol mismatch on resync"
  | Error _ -> () (* stays dirty; retried next iteration *)

(* Push queued publications to our own shard's store.  A reconnect
   edge on the publish link escalates to a reset-publish of the full
   local contribution set: the store may be a freshly restarted
   daemon's (our incremental deltas would be meaningless there) or may
   still hold a previous incarnation's rows, which the reset clears —
   stale state cannot survive a controller restart. *)
let flush_publish (xs : xstate) : unit =
  if List.mem Transport.Connected (Transport.events xs.xc.ex_publish) then
    xs.x_pub_dirty <- true;
  if xs.x_pub_dirty || xs.x_queue <> [] then begin
    let reset = xs.x_pub_dirty in
    let deltas =
      if reset then
        Hashtbl.fold
          (fun (rel, text) _ acc -> (rel, text, 1) :: acc)
          xs.x_local []
      else List.rev xs.x_queue
    in
    let order = ref [] and by_rel = Hashtbl.create 4 in
    List.iter
      (fun (rel, text, w) ->
        match Hashtbl.find_opt by_rel rel with
        | Some r -> r := (text, w) :: !r
        | None ->
          order := rel :: !order;
          Hashtbl.add by_rel rel (ref [ (text, w) ]))
      deltas;
    let pub_rows =
      List.rev_map (fun rel -> (rel, List.rev !(Hashtbl.find by_rel rel))) !order
    in
    match
      Transport.send xs.xc.ex_publish
        (Links.Publish
           { Links.pub_shard = xs.xc.ex_shard; pub_reset = reset; pub_rows })
    with
    | Ok Links.Pub_ok ->
      Obs.Counter.incr m_xpublishes;
      Obs.Counter.add m_xrows_out (List.length deltas);
      xs.x_queue <- [];
      (* if this send itself reconnected, an incremental publish may
         have landed on a fresh store: reset on the next flush *)
      xs.x_pub_dirty <-
        (not reset)
        && List.mem Transport.Connected (Transport.events xs.xc.ex_publish)
    | Ok _ -> error "exchange link: protocol mismatch on publish"
    | Error _ -> () (* queue kept; retried next iteration *)
  end

(* One exchange round, run every sync iteration: ingest every peer
   (incremental poll, or snapshot resync on first contact and after
   any reconnect edge), then flush our own queued publications. *)
let exchange_step (t : t) : unit =
  match t.exchange with
  | None -> ()
  | Some xs ->
    List.iter
      (fun (shard, link) ->
        if List.mem Transport.Connected (Transport.events link) then
          Hashtbl.replace xs.x_peer_dirty shard true;
        if Hashtbl.find_opt xs.x_peer_dirty shard = Some true then
          exchange_resync t xs shard link
        else
          match Transport.send link Links.Poll_monitor with
          | Ok (Links.Batches bs) ->
            if List.mem Transport.Connected (Transport.events link) then begin
              (* the poll straddled a reconnect: distrust it *)
              Hashtbl.replace xs.x_peer_dirty shard true;
              exchange_resync t xs shard link
            end
            else
              List.iter
                (fun b ->
                  exchange_apply t xs
                    (List.filter
                       (fun (s, _, _, _) -> s = shard)
                       (Xrel.deltas_of_updates b)))
                bs
          | Ok _ -> error "exchange link: protocol mismatch on poll"
          | Error _ -> Hashtbl.replace xs.x_peer_dirty shard true)
      xs.xc.ex_peers;
    flush_publish xs

(* ---------------- construction ---------------- *)

(* Generate + parse + assemble the program and resolve the relation
   maps — everything [create] and [connect] share. *)
let prepare ?pool ~(schema : Ovsdb.Schema.t) ~(p4 : P4.Program.t)
    ~(rules : string) ~digest_replace () =
  let generated = Codegen.generate ~schema ~p4 in
  let user =
    match Parser.parse_program rules with
    | Ok p -> p
    | Error msg -> error "rules do not parse: %s" msg
  in
  let program = Codegen.assemble generated user in
  let engine = Engine.create ?pool program in
  let input_rel_of_table =
    List.map
      (fun (t : Ovsdb.Schema.table) ->
        match Ast.find_decl program (Codegen.camel t.tname) with
        | Some d -> (t.tname, d)
        | None -> error "missing generated relation for table %s" t.tname)
      schema.tables
  in
  let digest_rel_of_name =
    List.map
      (fun (dname, rname) ->
        match Ast.find_decl program rname with
        | Some d -> (dname, d)
        | None -> error "missing generated relation for digest %s" dname)
      generated.digest_rels
  in
  let digest_replace =
    List.map
      (fun (dname, key_cols) ->
        match List.assoc_opt dname digest_rel_of_name with
        | None -> error "digest_replace: unknown digest %s" dname
        | Some decl ->
          let index_of c =
            let rec go i = function
              | [] -> error "digest_replace: %s has no column %s" dname c
              | (name, _) :: rest -> if String.equal name c then i else go (i + 1) rest
            in
            go 0 decl.Ast.cols
          in
          (decl.Ast.rname, List.map index_of key_cols))
      digest_replace
  in
  (program, engine, generated.Codegen.mappings, input_rel_of_table,
   digest_rel_of_name, digest_replace)

(* Resolve an {!Endpoint.transport} into a management link.  [local]
   lazily creates the in-process monitor, so a fully remote endpoint
   never registers one. *)
let resolve_mgmt (tr : Endpoint.transport)
    ~(local : (Ovsdb.Db.t * Ovsdb.Db.monitor) Lazy.t option) :
    Links.mgmt_link * Transport.ctl option =
  let rec go = function
    | Endpoint.In_process -> (
      match local with
      | Some l ->
        let db, mon = Lazy.force l in
        (Links.direct_mgmt db mon, None)
      | None ->
        error "endpoint: In_process management plane needs a local database")
    | Endpoint.Wire -> (
      match local with
      | Some l ->
        let db, mon = Lazy.force l in
        (Links.wire_mgmt db mon, None)
      | None -> error "endpoint: Wire management plane needs a local database")
    | Endpoint.Socket { addr; codec; auth } ->
      (Links.socket_mgmt ~codec ?auth ~addr (), None)
    | Endpoint.Faulty { seed; faults; inner } ->
      let link, _inner_ctl = go inner in
      let link, ctl = Transport.faulty ~seed ?faults link in
      (link, Some ctl)
  in
  go tr

let resolve_p4 (tr : Endpoint.transport) ~(name : string)
    ~(local : P4runtime.server option) :
    Links.p4_link * Transport.ctl option =
  let rec go = function
    | Endpoint.In_process -> (
      match local with
      | Some srv -> (Links.direct_p4 srv, None)
      | None ->
        error "endpoint: In_process plane for switch %s needs a local switch"
          name)
    | Endpoint.Wire -> (
      match local with
      | Some srv -> (Links.wire_p4 srv, None)
      | None ->
        error "endpoint: Wire plane for switch %s needs a local switch" name)
    | Endpoint.Socket { addr; codec; auth } ->
      (Links.socket_p4 ~codec ?auth ~addr (), None)
    | Endpoint.Faulty { seed; faults; inner } ->
      let link, _inner_ctl = go inner in
      let link, ctl = Transport.faulty ~seed ?faults link in
      (link, Some ctl)
  in
  go tr

let check_limits ~max_iterations ~retry_limit =
  if max_iterations <= 0 then
    error "max_iterations must be positive (got %d)" max_iterations;
  if retry_limit <= 0 then
    error "retry_limit must be positive (got %d)" retry_limit

(* Initial exchange bookkeeping: every digest-fed input relation is
   exchanged; every peer starts dirty (first contact is a snapshot
   resync) and the first publish resets, clearing any rows a previous
   incarnation of this shard left in the store. *)
let make_xstate (exchange : exchange option) digest_rel_of_name :
    xstate option =
  Option.map
    (fun xc ->
      let x_rels = Hashtbl.create 4 in
      List.iter
        (fun (_, (d : Ast.rel_decl)) -> Hashtbl.replace x_rels d.Ast.rname ())
        digest_rel_of_name;
      let x_peer_dirty = Hashtbl.create 4 in
      List.iter (fun (s, _) -> Hashtbl.replace x_peer_dirty s true) xc.ex_peers;
      {
        xc;
        x_rels;
        x_local = Hashtbl.create 64;
        x_mirror = Hashtbl.create 64;
        x_queue = [];
        x_pub_dirty = true;
        x_peer_dirty;
      })
    exchange

(** Build a controller around in-process plane objects.  [rules] is the
    user-written DL program text (rules plus optional internal relation
    declarations); everything else is generated.  [endpoint] names each
    plane's transport (default {!Endpoint.in_process}); [exchange]
    attaches the controller to a sharded fleet's cross-shard relation
    exchange.  [max_iterations] bounds the digest feedback loop in
    {!sync}. *)
let create ?(digest_replace = []) ?(max_iterations = 1000) ?(retry_limit = 8)
    ?(endpoint = Endpoint.in_process) ?exchange ?pool
    ~(db : Ovsdb.Db.t) ~(p4 : P4.Program.t)
    ~(rules : string) ~(switches : (string * P4.Switch.t) list) () : t =
  check_limits ~max_iterations ~retry_limit;
  let ep = Endpoint.planes_exn endpoint in
  let schema = db.Ovsdb.Db.schema in
  let program, engine, mappings, input_rel_of_table, digest_rel_of_name,
      digest_replace =
    prepare ?pool ~schema ~p4 ~rules ~digest_replace ()
  in
  let local_mgmt =
    lazy
      ( db,
        Ovsdb.Db.add_monitor db
          (List.map
             (fun (t : Ovsdb.Schema.table) -> (t.tname, None))
             schema.tables) )
  in
  let mgmt, mgmt_ctl =
    resolve_mgmt ep.Endpoint.mgmt ~local:(Some local_mgmt)
  in
  let p4_ctls = ref [] in
  let sws =
    List.map
      (fun (n, sw) ->
        let srv = P4runtime.attach sw in
        let link, ctl =
          resolve_p4 (ep.Endpoint.p4_of n) ~name:n ~local:(Some srv)
        in
        (match ctl with
        | Some c -> p4_ctls := (n, c) :: !p4_ctls
        | None -> ());
        {
          sw_name = n;
          sw_link = link;
          sw_info = P4runtime.info srv;
          sw_up = true;
          sw_dirty = false;
          sw_seen = IntSet.empty;
          sw_fp = None;
        })
      switches
  in
  {
    mgmt;
    mgmt_ctl;
    mgmt_dirty = false;
    p4_ctls = !p4_ctls;
    engine;
    program;
    mappings;
    input_rel_of_table;
    digest_rel_of_name;
    exchange = make_xstate exchange digest_rel_of_name;
    sws;
    pool;
    digest_replace;
    max_iterations;
    retry_limit;
    ntxns = 0;
    nentries = Atomic.make 0;
    ndigests = 0;
    ngroups = 0;
    iter_deltas = [];
  }

(** Build a controller whose planes all live in {e another} process:
    every transport in [endpoint] must bottom out in a socket.  The
    database schema and P4 program are passed explicitly (the peer's
    copies must match — the codecs fail loudly on drift); switch
    identities are just names resolved through [endpoint.p4_of].  The
    controller starts dirty on the management plane, so the first
    {!sync} resyncs against the server's state rather than assuming an
    empty database. *)
let connect ?(digest_replace = []) ?(max_iterations = 1000)
    ?(retry_limit = 8) ?exchange ?pool ~(endpoint : Endpoint.t)
    ~(schema : Ovsdb.Schema.t) ~(p4 : P4.Program.t) ~(rules : string)
    ~(switch_names : string list) () : t =
  check_limits ~max_iterations ~retry_limit;
  let ep = Endpoint.planes_exn endpoint in
  if not (Endpoint.is_remote ep.Endpoint.mgmt) then
    error "connect: management transport %s is not a socket"
      (Endpoint.transport_to_string ep.Endpoint.mgmt);
  List.iter
    (fun n ->
      if not (Endpoint.is_remote (ep.Endpoint.p4_of n)) then
        error "connect: transport %s for switch %s is not a socket"
          (Endpoint.transport_to_string (ep.Endpoint.p4_of n))
          n)
    switch_names;
  let program, engine, mappings, input_rel_of_table, digest_rel_of_name,
      digest_replace =
    prepare ?pool ~schema ~p4 ~rules ~digest_replace ()
  in
  let mgmt, mgmt_ctl = resolve_mgmt ep.Endpoint.mgmt ~local:None in
  let sw_info = P4.P4info.of_program p4 in
  let p4_ctls = ref [] in
  let sws =
    List.map
      (fun n ->
        let link, ctl = resolve_p4 (ep.Endpoint.p4_of n) ~name:n ~local:None in
        (match ctl with
        | Some c -> p4_ctls := (n, c) :: !p4_ctls
        | None -> ());
        {
          sw_name = n;
          sw_link = link;
          sw_info;
          sw_up = true;
          sw_dirty = true;  (* unknown remote state: reconcile first *)
          sw_seen = IntSet.empty;
          sw_fp = None;
        })
      switch_names
  in
  {
    mgmt;
    mgmt_ctl;
    mgmt_dirty = true;  (* unknown remote state: resync first *)
    p4_ctls = !p4_ctls;
    engine;
    program;
    mappings;
    input_rel_of_table;
    digest_rel_of_name;
    exchange = make_xstate exchange digest_rel_of_name;
    sws;
    pool;
    digest_replace;
    max_iterations;
    retry_limit;
    ntxns = 0;
    nentries = Atomic.make 0;
    ndigests = 0;
    ngroups = 0;
    iter_deltas = [];
  }

(* ---------------- the synchronisation loop ---------------- *)

let drain_connectivity (t : t) : unit =
  List.iter
    (fun sw ->
      List.iter
        (fun e ->
          let ev =
            match e with
            | Transport.Connected -> Step.Switch_up sw.sw_name
            | Transport.Disconnected -> Step.Switch_down sw.sw_name
          in
          exec_commands t (step t ev))
        (Transport.events sw.sw_link))
    t.sws

(** Process all pending management-plane changes and data-plane digests
    until the system is quiescent.  Returns the number of DL
    transactions committed during this call. *)
let sync (t : t) : int =
  Obs.Counter.incr m_syncs;
  Obs.Histogram.time h_sync @@ fun () ->
  let before = t.ntxns in
  (* Digest polling drains per sync: every switch is polled in the
     first iteration (and a poll rides free on any iteration where the
     switch received commands), then re-polled only while its previous
     poll kept returning digests.  An empty — or failed — poll means
     nothing is queued at the switch, so the quiescence check rests on
     the management poll alone; a digest arriving mid-sync is simply
     picked up by the next sync, as any digest raised after the last
     poll always was. *)
  let want_poll : (string, bool) Hashtbl.t = Hashtbl.create 8 in
  (* Monitor polls pair up: each management round trip carries two
     pipelined [Poll_monitor]s, the first consumed by this iteration,
     the second stashed for the next.  Sound because the engine never
     writes to the management database — processing an iteration
     cannot create new monitor batches, so the stashed (slightly
     earlier) response only narrows the window in which a concurrent
     external transaction lands in this sync instead of the next, a
     race inherent to any polling cadence.  The stash is discarded
     whenever the link is marked dirty: a resync supersedes it. *)
  let stashed_poll = ref None in
  let poll_monitor () =
    match !stashed_poll with
    | Some r ->
      stashed_poll := None;
      r
    | None -> (
      match
        Transport.send_many t.mgmt [ Links.Poll_monitor; Links.Poll_monitor ]
      with
      | [ r1; r2 ] ->
        stashed_poll := Some r2;
        r1
      | _ -> error "management link: bad pipelined poll arity")
  in
  let rec loop fuel =
    if fuel = 0 then begin
      let changing =
        match t.iter_deltas with
        | [] -> "(no relation deltas recorded)"
        | l ->
          String.concat ", "
            (List.map
               (fun (rel, z) ->
                 Printf.sprintf "%s (%d rows)" rel (Zset.cardinal z))
               l)
      in
      error
        "sync did not quiesce after %d iterations (feedback loop?); \
         still changing in the last iteration: %s"
        t.max_iterations changing
    end;
    Obs.Counter.incr m_iterations;
    t.iter_deltas <- [];
    let txns0 = t.ntxns in
    drain_connectivity t;
    (* Management plane.  A reconnect edge or a failed poll means
       monitor batches may have been lost; rather than skipping (which
       silently dropped configuration), mark the link dirty and repair
       by resync.  A poll that itself reconnected is also untrusted:
       its response straddles two monitors, so discard it and resync. *)
    if List.mem Transport.Connected (Transport.events t.mgmt) then
      t.mgmt_dirty <- true;
    if t.mgmt_dirty then begin
      stashed_poll := None;
      mgmt_resync t
    end;
    let batches =
      if t.mgmt_dirty then []
      else
        match poll_monitor () with
        | Ok (Links.Batches bs) ->
          if List.mem Transport.Connected (Transport.events t.mgmt) then begin
            t.mgmt_dirty <- true;
            stashed_poll := None;
            mgmt_resync t;
            []
          end
          else bs
        | Ok _ -> error "management link: protocol mismatch on poll"
        | Error _ ->
          t.mgmt_dirty <- true;
          stashed_poll := None;
          mgmt_resync t;
          []
    in
    Obs.Counter.add m_monitor_batches (List.length batches);
    (* Step every batch first — [step] reads only the engine and the
       batch, never switch state, so the steps can run back-to-back —
       then execute the accumulated commands per switch with this
       iteration's digest poll appended to each switch's final
       pipelined batch: writes and poll share one round trip.  Every
       switch is polled, even one currently down (on an in-process
       faulty link each attempt advances the reconnect clock, and a
       down link just answers [Closed]); the work fans out on the
       pool, and the responses then feed the single-threaded step core
       in fixed switch order. *)
    let cmds =
      List.concat_map (fun batch -> step t (Step.Monitor_batch batch)) batches
    in
    let by_sw = Hashtbl.create 8 in
    List.iter
      (fun cmd ->
        let name =
          match cmd with
          | Step.Write (n, _) | Step.Ack (n, _) | Step.Reconcile n -> n
        in
        match Hashtbl.find_opt by_sw name with
        | Some r -> r := cmd :: !r
        | None -> Hashtbl.add by_sw name (ref [ cmd ]))
      cmds;
    let sws = Array.of_list t.sws in
    let polls =
      pool_map t
        (Array.map
           (fun sw () ->
             let cmds =
               match Hashtbl.find_opt by_sw sw.sw_name with
               | Some r -> List.rev !r
               | None -> []
             in
             let wanted =
               match Hashtbl.find_opt want_poll sw.sw_name with
               | Some b -> b
               | None -> true (* first iteration: always poll *)
             in
             if cmds = [] && not wanted then None
             else Some (exec_sw_cmds_polling t sw cmds))
           sws)
    in
    Array.iteri
      (fun i result ->
        let sw = sws.(i) in
        match result with
        | None -> () (* drained in an earlier iteration *)
        | Some result -> (
          Hashtbl.replace want_poll sw.sw_name
            (match result with
            | Ok (P4runtime.Wire.Digests (_ :: _)) -> true
            | _ -> false);
          match result with
          | Ok (P4runtime.Wire.Digests []) -> ()
          | Ok (P4runtime.Wire.Digests dls) ->
            exec_commands t (step t (Step.Digest_lists (sw.sw_name, dls)))
          | Ok (P4runtime.Wire.Error_reply msg) ->
            error "switch %s: digest poll failed: %s" sw.sw_name msg
          | Ok _ ->
            error "switch %s: protocol mismatch on digest poll" sw.sw_name
          | Error _ -> () (* digests stay queued at the switch *)))
      polls;
    (* Cross-shard exchange: publish what this iteration learned,
       ingest what the peers learned.  Applied peer rows commit
       transactions, so the quiescence check keeps iterating until
       the fleet's inputs stop moving. *)
    exchange_step t;
    if t.ntxns > txns0 then loop (fuel - 1)
  in
  loop t.max_iterations;
  (* Edges raised by the last round of polls (e.g. a reconnect observed
     by the final digest poll) would otherwise wait for the next sync. *)
  drain_connectivity t;
  (* Dirty switches reconcile independently (each dumps its own state
     over its own link and diffs against the read-only engine), so
     they too fan out per switch. *)
  let dirty =
    Array.of_list (List.filter (fun sw -> sw.sw_up && sw.sw_dirty) t.sws)
  in
  ignore (pool_map t (Array.map (fun sw () -> reconcile_sw t sw) dirty));
  t.ntxns - before

(** Force a full reconciliation of one switch (by name). *)
let reconcile (t : t) (name : string) : unit = reconcile_sw t (find_sw t name)

(* ---------------- incremental flow programming ---------------- *)

let attach_flow_programmer (t : t) (name : string) (psw : P4.Switch.t)
    ~(push : Ofp4.Openflow.flow_delta -> unit) : unit =
  let sw = find_sw t name in
  sw.sw_fp <-
    Some
      {
        fp_switch = psw;
        fp_state = Ofp4.Compile.State.create psw;
        fp_push = push;
        fp_stale = false;
      }

let flow_pipeline (t : t) (name : string) : Ofp4.Openflow.t option =
  match (find_sw t name).sw_fp with
  | None -> None
  | Some fp -> Some (Ofp4.Compile.State.flows fp.fp_state)

(** Force a management-plane resync on the next sync. *)
let mark_mgmt_dirty (t : t) : unit = t.mgmt_dirty <- true

(** Fault-injection handles, when the endpoint wrapped a plane in
    [Faulty]. *)
let mgmt_ctl (t : t) : Transport.ctl option = t.mgmt_ctl
let p4_ctl (t : t) (name : string) : Transport.ctl option =
  List.assoc_opt name t.p4_ctls

(** Canonical byte dump of one switch's forwarding state, read over its
    link: every table's entries (sorted) in the wire encoding, plus the
    multicast groups.  Byte-comparable across processes and transports
    — the convergence tests' equality oracle.
    @raise Controller_error on a link failure. *)
let dump_switch (t : t) (name : string) : string =
  let sw = find_sw t name in
  (* Pipeline every read of the dump in one batch; the dump text itself
     stays in the JSON encoding so it is byte-comparable regardless of
     which wire codec carried the reads. *)
  let read_results =
    let reqs =
      List.map
        (fun (ti : P4.P4info.table_info) ->
          P4runtime.Wire.Read_table ti.table_id)
        sw.sw_info.tables
      @ [ P4runtime.Wire.Read_groups ]
    in
    List.map
      (function
        | Ok (P4runtime.Wire.Error_reply msg) -> error "dump %s: %s" name msg
        | Ok resp -> resp
        | Error e -> error "dump %s: %s" name (Transport.error_message e))
      (Transport.send_many sw.sw_link reqs)
  in
  let entries, groups =
    match List.rev read_results with
    | P4runtime.Wire.Groups gs :: tables_rev ->
      let entries =
        List.concat_map
          (function
            | P4runtime.Wire.Table es -> es
            | _ -> error "dump %s: protocol mismatch on read_table" name)
          (List.rev tables_rev)
      in
      ( entries,
        List.sort compare
          (List.map (fun (g, ps) -> (g, List.sort Int64.compare ps)) gs) )
    | _ -> error "dump %s: protocol mismatch on read_groups" name
  in
  P4runtime.Wire.encode_response
    (P4runtime.Wire.Table (List.sort compare entries))
  ^ "\n"
  ^ P4runtime.Wire.encode_response (P4runtime.Wire.Groups groups)

(** Direct access to the engine, for inspection in tests and examples. *)
let engine (t : t) = t.engine

(** Canonical text dump of one engine relation, sorted — the
    cross-shard convergence tests' per-relation equality oracle. *)
let relations (t : t) : string list = Engine.relations t.engine

let relation_dump (t : t) (rel : string) : string list =
  List.sort String.compare
    (List.map Row.to_string (Engine.relation_rows t.engine rel))

(** This controller's own counts (independent of the process-global Obs
    registry and of whether collection is enabled). *)
let stats (t : t) =
  {
    txns = t.ntxns;
    entries_written = Atomic.get t.nentries;
    digests_consumed = t.ndigests;
    groups_updated = t.ngroups;
  }

(** Pre-flight report: output relations no rule writes and digest
    relations no rule reads — usually authoring mistakes. *)
let preflight (t : t) : string list =
  let written rel =
    List.exists (fun (r : Ast.rule) -> String.equal r.head.hrel rel)
      t.program.rules
  in
  let read rel =
    List.exists
      (fun (r : Ast.rule) ->
        List.exists (fun (dep, _) -> String.equal dep rel)
          (Ast.body_dependencies r))
      t.program.rules
  in
  List.filter_map
    (fun (d : Ast.rel_decl) ->
      match d.role with
      | Ast.Output
        when (not (written d.rname))
             && not
                  (List.exists
                     (fun (m : Codegen.mapping) ->
                       String.equal m.rel_name d.rname && m.is_default)
                     t.mappings) ->
        Some (Printf.sprintf "output relation %s has no rules" d.rname)
      | Ast.Input
        when List.exists (fun (_, dd) -> dd == d) t.digest_rel_of_name
             && not (read d.rname) ->
        Some (Printf.sprintf "digest relation %s is never read" d.rname)
      | _ -> None)
    t.program.decls
