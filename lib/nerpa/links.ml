type mgmt_request = Poll_monitor
type mgmt_response = Batches of Ovsdb.Db.table_updates list

type mgmt_link = (mgmt_request, mgmt_response) Transport.t
type p4_link = (P4runtime.Wire.request, P4runtime.Wire.response) Transport.t

let poll_handler mon Poll_monitor = Batches (Ovsdb.Db.poll mon)

let direct_mgmt mon = Transport.direct (poll_handler mon)

let wire_mgmt mon =
  let module J = Ovsdb.Json in
  let encode_req Poll_monitor = J.to_string (J.String "poll") in
  let decode_req s =
    match J.of_string s with
    | J.String "poll" -> Ok Poll_monitor
    | j -> Error (Printf.sprintf "bad monitor request %s" (J.to_string j))
    | exception J.Parse_error msg -> Error msg
  in
  let encode_resp (Batches bs) =
    J.to_string (J.List (List.map Ovsdb.Rpc.updates_to_json bs))
  in
  let decode_resp s =
    match J.of_string s with
    | J.List bs -> (
      try Ok (Batches (List.map Ovsdb.Rpc.updates_of_json bs))
      with Ovsdb.Rpc.Protocol_error msg -> Error msg)
    | j -> Error (Printf.sprintf "bad monitor response %s" (J.to_string j))
    | exception J.Parse_error msg -> Error msg
  in
  Transport.wire ~encode_req ~decode_req ~encode_resp ~decode_resp
    (poll_handler mon)

let direct_p4 srv = Transport.direct (P4runtime.Wire.dispatch srv)

let wire_p4 srv =
  Transport.wire ~encode_req:P4runtime.Wire.encode_request
    ~decode_req:P4runtime.Wire.decode_request
    ~encode_resp:P4runtime.Wire.encode_response
    ~decode_resp:P4runtime.Wire.decode_response
    (P4runtime.Wire.dispatch srv)
