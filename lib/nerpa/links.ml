(* A shard's contribution to the exchanged relations, pushed at its own
   shard daemon's exchange database (see [Xrel]): Z-set deltas of
   row-text per relation.  [pub_reset] first clears every row the shard
   previously published — the first publish of a (re)started controller
   is a reset, so a prior incarnation's stale rows cannot survive it. *)
type publish = {
  pub_shard : int;
  pub_reset : bool;
  pub_rows : (string * (string * int) list) list;
}

type mgmt_request = Poll_monitor | Resync | Publish of publish | Get_stats

type mgmt_response =
  | Batches of Ovsdb.Db.table_updates list
  | Snapshot of Ovsdb.Db.table_updates
  | Pub_ok
  | Stats of string

type mgmt_link = (mgmt_request, mgmt_response) Transport.t
type p4_link = (P4runtime.Wire.request, P4runtime.Wire.response) Transport.t

let mgmt_handler db mon = function
  | Poll_monitor -> Batches (Ovsdb.Db.poll mon)
  | Resync ->
    (* Drain the monitor first: queued batches describe changes already
       visible in the snapshot, and must not be replayed on top of it. *)
    ignore (Ovsdb.Db.poll mon);
    Snapshot (Ovsdb.Db.snapshot db)
  | Publish p ->
    (* Only meaningful against an exchange database (one whose schema
       has the [Xrel] table); publishing at anything else is a
       deployment wiring error and fails loudly in [Xrel.apply]. *)
    Xrel.apply db ~shard:p.pub_shard ~reset:p.pub_reset ~rows:p.pub_rows;
    Pub_ok
  | Get_stats -> Stats (Obs.render_json ())

(* ---------------- management-plane codec ---------------- *)

module J = Ovsdb.Json

let publish_to_json (p : publish) =
  J.Obj
    [
      ("shard", J.Int (Int64.of_int p.pub_shard));
      ("reset", J.Bool p.pub_reset);
      ( "rows",
        J.List
          (List.map
             (fun (rel, rws) ->
               J.Obj
                 [
                   ("rel", J.String rel);
                   ( "delta",
                     J.List
                       (List.map
                          (fun (row, w) -> J.List [ J.String row; J.Int (Int64.of_int w) ])
                          rws) );
                 ])
             p.pub_rows) );
    ]

let publish_of_json = function
  | J.Obj [ ("shard", J.Int shard); ("reset", J.Bool reset); ("rows", J.List rows) ] ->
    let shard = Int64.to_int shard in
    let rel_of = function
      | J.Obj [ ("rel", J.String rel); ("delta", J.List delta) ] ->
        ( rel,
          List.map
            (function
              | J.List [ J.String row; J.Int w ] -> (row, Int64.to_int w)
              | j -> failwith ("bad publish row " ^ J.to_string j))
            delta )
      | j -> failwith ("bad publish relation " ^ J.to_string j)
    in
    { pub_shard = shard; pub_reset = reset; pub_rows = List.map rel_of rows }
  | j -> failwith ("bad publish " ^ J.to_string j)

let encode_mgmt_request = function
  | Poll_monitor -> J.to_string (J.String "poll")
  | Resync -> J.to_string (J.String "resync")
  | Publish p -> J.to_string (J.Obj [ ("publish", publish_to_json p) ])
  | Get_stats -> J.to_string (J.String "stats")

let decode_mgmt_request s =
  match J.of_string s with
  | J.String "poll" -> Ok Poll_monitor
  | J.String "resync" -> Ok Resync
  | J.String "stats" -> Ok Get_stats
  | J.Obj [ ("publish", j) ] -> (
    try Ok (Publish (publish_of_json j)) with Failure msg -> Error msg)
  | j -> Error (Printf.sprintf "bad monitor request %s" (J.to_string j))
  | exception J.Parse_error msg -> Error msg

let encode_mgmt_response = function
  | Batches bs ->
    J.to_string (J.List (List.map Ovsdb.Rpc.updates_to_json bs))
  | Snapshot s ->
    J.to_string
      (J.Obj [ ("snapshot", Ovsdb.Rpc.updates_to_json s) ])
  | Pub_ok -> J.to_string (J.String "pub-ok")
  | Stats s -> J.to_string (J.Obj [ ("stats", J.String s) ])

let decode_mgmt_response s =
  match J.of_string s with
  | J.List bs -> (
    try Ok (Batches (List.map Ovsdb.Rpc.updates_of_json bs))
    with Ovsdb.Rpc.Protocol_error msg -> Error msg)
  | J.Obj [ ("snapshot", j) ] -> (
    try Ok (Snapshot (Ovsdb.Rpc.updates_of_json j))
    with Ovsdb.Rpc.Protocol_error msg -> Error msg)
  | J.String "pub-ok" -> Ok Pub_ok
  | J.Obj [ ("stats", J.String s) ] -> Ok (Stats s)
  | j -> Error (Printf.sprintf "bad monitor response %s" (J.to_string j))
  | exception J.Parse_error msg -> Error msg

(* Binary forms (Ovsdb.Binc), used when the socket connection
   negotiated the binary frame codec. *)

module B = Ovsdb.Binc

let w_publish b (p : publish) =
  B.w_varint b p.pub_shard;
  B.w_bool b p.pub_reset;
  B.w_list
    (fun b (rel, rws) ->
      B.w_string b rel;
      B.w_list
        (fun b (row, w) ->
          B.w_string b row;
          B.w_int64 b (Int64.of_int w))
        b rws)
    b p.pub_rows

let r_publish r =
  let pub_shard = B.r_varint r in
  let pub_reset = B.r_bool r in
  let pub_rows =
    B.r_list
      (fun r ->
        let rel = B.r_string r in
        let rws =
          B.r_list
            (fun r ->
              let row = B.r_string r in
              (row, Int64.to_int (B.r_int64 r)))
            r
        in
        (rel, rws))
      r
  in
  { pub_shard; pub_reset; pub_rows }

let encode_mgmt_request_bin = function
  | Poll_monitor -> "\x00"
  | Resync -> "\x01"
  | Publish p ->
    let b = B.writer () in
    B.w_u8 b 2;
    w_publish b p;
    B.contents b
  | Get_stats -> "\x03"

let decode_mgmt_request_bin s =
  match s with
  | "\x00" -> Ok Poll_monitor
  | "\x01" -> Ok Resync
  | "\x03" -> Ok Get_stats
  | s when String.length s > 0 && s.[0] = '\x02' ->
    B.decode
      (fun r ->
        match B.r_u8 r with
        | 2 -> Publish (r_publish r)
        | t -> raise (B.Error (Printf.sprintf "bad monitor request tag %d" t)))
      s
  | s -> Error (Printf.sprintf "bad binary monitor request (%d bytes)"
                  (String.length s))

let encode_mgmt_response_bin = function
  | Batches bs ->
    let b = B.writer () in
    B.w_u8 b 0;
    B.w_list B.w_table_updates b bs;
    B.contents b
  | Snapshot s ->
    let b = B.writer () in
    B.w_u8 b 1;
    B.w_table_updates b s;
    B.contents b
  | Pub_ok -> "\x02"
  | Stats s ->
    let b = B.writer () in
    B.w_u8 b 3;
    B.w_string b s;
    B.contents b

let decode_mgmt_response_bin s =
  B.decode
    (fun r ->
      match B.r_u8 r with
      | 0 -> Batches (B.r_list B.r_table_updates r)
      | 1 -> Snapshot (B.r_table_updates r)
      | 2 -> Pub_ok
      | 3 -> Stats (B.r_string r)
      | t -> raise (B.Error (Printf.sprintf "bad monitor response tag %d" t)))
    s

(* Codec-indexed selectors, the shape Transport.socket and lib/server
   consume. *)

let encode_mgmt_request_c = function
  | Transport.Json -> encode_mgmt_request
  | Transport.Binary -> encode_mgmt_request_bin

let decode_mgmt_request_c = function
  | Transport.Json -> decode_mgmt_request
  | Transport.Binary -> decode_mgmt_request_bin

let encode_mgmt_response_c = function
  | Transport.Json -> encode_mgmt_response
  | Transport.Binary -> encode_mgmt_response_bin

let decode_mgmt_response_c = function
  | Transport.Json -> decode_mgmt_response
  | Transport.Binary -> decode_mgmt_response_bin

let encode_p4_request_c = function
  | Transport.Json -> P4runtime.Wire.encode_request
  | Transport.Binary -> P4runtime.Wire.encode_request_bin

let decode_p4_request_c = function
  | Transport.Json -> P4runtime.Wire.decode_request
  | Transport.Binary -> P4runtime.Wire.decode_request_bin

let encode_p4_response_c = function
  | Transport.Json -> P4runtime.Wire.encode_response
  | Transport.Binary -> P4runtime.Wire.encode_response_bin

let decode_p4_response_c = function
  | Transport.Json -> P4runtime.Wire.decode_response
  | Transport.Binary -> P4runtime.Wire.decode_response_bin

(* ---------------- constructors ---------------- *)

let direct_mgmt db mon = Transport.direct (mgmt_handler db mon)

let wire_mgmt db mon =
  Transport.wire ~encode_req:encode_mgmt_request
    ~decode_req:decode_mgmt_request ~encode_resp:encode_mgmt_response
    ~decode_resp:decode_mgmt_response (mgmt_handler db mon)

let socket_mgmt ?codec ?auth ~addr () =
  Transport.socket ~plane:Transport.Frame.Mgmt ~addr ?auth ?codec
    ~encode_req:encode_mgmt_request_c ~decode_resp:decode_mgmt_response_c ()

let direct_p4 srv = Transport.direct (P4runtime.Wire.dispatch srv)

let wire_p4 srv =
  Transport.wire ~encode_req:P4runtime.Wire.encode_request
    ~decode_req:P4runtime.Wire.decode_request
    ~encode_resp:P4runtime.Wire.encode_response
    ~decode_resp:P4runtime.Wire.decode_response
    (P4runtime.Wire.dispatch srv)

let socket_p4 ?codec ?auth ~addr () =
  Transport.socket ~plane:Transport.Frame.P4 ~addr ?auth ?codec
    ~encode_req:encode_p4_request_c ~decode_resp:decode_p4_response_c ()
