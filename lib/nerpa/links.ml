type mgmt_request = Poll_monitor | Resync

type mgmt_response =
  | Batches of Ovsdb.Db.table_updates list
  | Snapshot of Ovsdb.Db.table_updates

type mgmt_link = (mgmt_request, mgmt_response) Transport.t
type p4_link = (P4runtime.Wire.request, P4runtime.Wire.response) Transport.t

let mgmt_handler db mon = function
  | Poll_monitor -> Batches (Ovsdb.Db.poll mon)
  | Resync ->
    (* Drain the monitor first: queued batches describe changes already
       visible in the snapshot, and must not be replayed on top of it. *)
    ignore (Ovsdb.Db.poll mon);
    Snapshot (Ovsdb.Db.snapshot db)

(* ---------------- management-plane codec ---------------- *)

module J = Ovsdb.Json

let encode_mgmt_request = function
  | Poll_monitor -> J.to_string (J.String "poll")
  | Resync -> J.to_string (J.String "resync")

let decode_mgmt_request s =
  match J.of_string s with
  | J.String "poll" -> Ok Poll_monitor
  | J.String "resync" -> Ok Resync
  | j -> Error (Printf.sprintf "bad monitor request %s" (J.to_string j))
  | exception J.Parse_error msg -> Error msg

let encode_mgmt_response = function
  | Batches bs ->
    J.to_string (J.List (List.map Ovsdb.Rpc.updates_to_json bs))
  | Snapshot s ->
    J.to_string
      (J.Obj [ ("snapshot", Ovsdb.Rpc.updates_to_json s) ])

let decode_mgmt_response s =
  match J.of_string s with
  | J.List bs -> (
    try Ok (Batches (List.map Ovsdb.Rpc.updates_of_json bs))
    with Ovsdb.Rpc.Protocol_error msg -> Error msg)
  | J.Obj [ ("snapshot", j) ] -> (
    try Ok (Snapshot (Ovsdb.Rpc.updates_of_json j))
    with Ovsdb.Rpc.Protocol_error msg -> Error msg)
  | j -> Error (Printf.sprintf "bad monitor response %s" (J.to_string j))
  | exception J.Parse_error msg -> Error msg

(* ---------------- constructors ---------------- *)

let direct_mgmt db mon = Transport.direct (mgmt_handler db mon)

let wire_mgmt db mon =
  Transport.wire ~encode_req:encode_mgmt_request
    ~decode_req:decode_mgmt_request ~encode_resp:encode_mgmt_response
    ~decode_resp:decode_mgmt_response (mgmt_handler db mon)

let socket_mgmt ~path =
  Transport.socket ~plane:Transport.Frame.Mgmt ~path
    ~encode_req:encode_mgmt_request ~decode_resp:decode_mgmt_response ()

let direct_p4 srv = Transport.direct (P4runtime.Wire.dispatch srv)

let wire_p4 srv =
  Transport.wire ~encode_req:P4runtime.Wire.encode_request
    ~decode_req:P4runtime.Wire.decode_request
    ~encode_resp:P4runtime.Wire.encode_response
    ~decode_resp:P4runtime.Wire.decode_response
    (P4runtime.Wire.dispatch srv)

let socket_p4 ~path =
  Transport.socket ~plane:Transport.Frame.P4 ~path
    ~encode_req:P4runtime.Wire.encode_request
    ~decode_resp:P4runtime.Wire.decode_response ()
