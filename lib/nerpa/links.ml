type mgmt_request = Poll_monitor | Resync

type mgmt_response =
  | Batches of Ovsdb.Db.table_updates list
  | Snapshot of Ovsdb.Db.table_updates

type mgmt_link = (mgmt_request, mgmt_response) Transport.t
type p4_link = (P4runtime.Wire.request, P4runtime.Wire.response) Transport.t

let mgmt_handler db mon = function
  | Poll_monitor -> Batches (Ovsdb.Db.poll mon)
  | Resync ->
    (* Drain the monitor first: queued batches describe changes already
       visible in the snapshot, and must not be replayed on top of it. *)
    ignore (Ovsdb.Db.poll mon);
    Snapshot (Ovsdb.Db.snapshot db)

(* ---------------- management-plane codec ---------------- *)

module J = Ovsdb.Json

let encode_mgmt_request = function
  | Poll_monitor -> J.to_string (J.String "poll")
  | Resync -> J.to_string (J.String "resync")

let decode_mgmt_request s =
  match J.of_string s with
  | J.String "poll" -> Ok Poll_monitor
  | J.String "resync" -> Ok Resync
  | j -> Error (Printf.sprintf "bad monitor request %s" (J.to_string j))
  | exception J.Parse_error msg -> Error msg

let encode_mgmt_response = function
  | Batches bs ->
    J.to_string (J.List (List.map Ovsdb.Rpc.updates_to_json bs))
  | Snapshot s ->
    J.to_string
      (J.Obj [ ("snapshot", Ovsdb.Rpc.updates_to_json s) ])

let decode_mgmt_response s =
  match J.of_string s with
  | J.List bs -> (
    try Ok (Batches (List.map Ovsdb.Rpc.updates_of_json bs))
    with Ovsdb.Rpc.Protocol_error msg -> Error msg)
  | J.Obj [ ("snapshot", j) ] -> (
    try Ok (Snapshot (Ovsdb.Rpc.updates_of_json j))
    with Ovsdb.Rpc.Protocol_error msg -> Error msg)
  | j -> Error (Printf.sprintf "bad monitor response %s" (J.to_string j))
  | exception J.Parse_error msg -> Error msg

(* Binary forms (Ovsdb.Binc), used when the socket connection
   negotiated the binary frame codec. *)

module B = Ovsdb.Binc

let encode_mgmt_request_bin = function
  | Poll_monitor -> "\x00"
  | Resync -> "\x01"

let decode_mgmt_request_bin s =
  match s with
  | "\x00" -> Ok Poll_monitor
  | "\x01" -> Ok Resync
  | s -> Error (Printf.sprintf "bad binary monitor request (%d bytes)"
                  (String.length s))

let encode_mgmt_response_bin = function
  | Batches bs ->
    let b = B.writer () in
    B.w_u8 b 0;
    B.w_list B.w_table_updates b bs;
    B.contents b
  | Snapshot s ->
    let b = B.writer () in
    B.w_u8 b 1;
    B.w_table_updates b s;
    B.contents b

let decode_mgmt_response_bin s =
  B.decode
    (fun r ->
      match B.r_u8 r with
      | 0 -> Batches (B.r_list B.r_table_updates r)
      | 1 -> Snapshot (B.r_table_updates r)
      | t -> raise (B.Error (Printf.sprintf "bad monitor response tag %d" t)))
    s

(* Codec-indexed selectors, the shape Transport.socket and lib/server
   consume. *)

let encode_mgmt_request_c = function
  | Transport.Json -> encode_mgmt_request
  | Transport.Binary -> encode_mgmt_request_bin

let decode_mgmt_request_c = function
  | Transport.Json -> decode_mgmt_request
  | Transport.Binary -> decode_mgmt_request_bin

let encode_mgmt_response_c = function
  | Transport.Json -> encode_mgmt_response
  | Transport.Binary -> encode_mgmt_response_bin

let decode_mgmt_response_c = function
  | Transport.Json -> decode_mgmt_response
  | Transport.Binary -> decode_mgmt_response_bin

let encode_p4_request_c = function
  | Transport.Json -> P4runtime.Wire.encode_request
  | Transport.Binary -> P4runtime.Wire.encode_request_bin

let decode_p4_request_c = function
  | Transport.Json -> P4runtime.Wire.decode_request
  | Transport.Binary -> P4runtime.Wire.decode_request_bin

let encode_p4_response_c = function
  | Transport.Json -> P4runtime.Wire.encode_response
  | Transport.Binary -> P4runtime.Wire.encode_response_bin

let decode_p4_response_c = function
  | Transport.Json -> P4runtime.Wire.decode_response
  | Transport.Binary -> P4runtime.Wire.decode_response_bin

(* ---------------- constructors ---------------- *)

let direct_mgmt db mon = Transport.direct (mgmt_handler db mon)

let wire_mgmt db mon =
  Transport.wire ~encode_req:encode_mgmt_request
    ~decode_req:decode_mgmt_request ~encode_resp:encode_mgmt_response
    ~decode_resp:decode_mgmt_response (mgmt_handler db mon)

let socket_mgmt ?codec ~path () =
  Transport.socket ~plane:Transport.Frame.Mgmt ~path ?codec
    ~encode_req:encode_mgmt_request_c ~decode_resp:decode_mgmt_response_c ()

let direct_p4 srv = Transport.direct (P4runtime.Wire.dispatch srv)

let wire_p4 srv =
  Transport.wire ~encode_req:P4runtime.Wire.encode_request
    ~decode_req:P4runtime.Wire.decode_request
    ~encode_resp:P4runtime.Wire.encode_response
    ~decode_resp:P4runtime.Wire.decode_response
    (P4runtime.Wire.dispatch srv)

let socket_p4 ?codec ~path () =
  Transport.socket ~plane:Transport.Frame.P4 ~path ?codec
    ~encode_req:encode_p4_request_c ~decode_resp:decode_p4_response_c ()
