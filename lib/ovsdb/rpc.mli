(** The OVSDB JSON-RPC wire protocol (RFC 7047 §4): request/response
    framing and the encoding of transact operations, conditions,
    mutations and monitor updates.

    The server is in-process — {!handle} consumes a request string and
    produces a response string — but the messages are the real protocol
    shape, so a socket transport could be layered on without touching
    this module. *)

exception Protocol_error of string

(** {1 Value encodings} *)

val condition_to_json : Db.condition -> Json.t
val condition_of_json : Json.t -> Db.condition
val mutation_of_json : Json.t -> Db.mutation
val row_to_json : Db.row -> Json.t

val updates_to_json : Db.table_updates -> Json.t
(** One transaction's changes in the monitor-update wire shape
    ({i table → uuid → \{old, new\}}). *)

val updates_of_json : Json.t -> Db.table_updates
(** Inverse of {!updates_to_json}.
    @raise Protocol_error on malformed input. *)

val updates_to_binary : Db.table_updates -> string
(** The same monitor-update payload in the compact binary form
    ({!Binc}), for peers that negotiated the binary codec. *)

val updates_of_binary : string -> (Db.table_updates, string) result
(** Inverse of {!updates_to_binary}; total ([Error] on malformed
    input, never an exception). *)

(** {1 Server} *)

type server

val serve : Db.t -> server

val handle : server -> string -> string
(** Handle one JSON-RPC request text and return the response text.
    Methods: [list_dbs], [get_schema], [transact] (with named-uuid
    resolution, forward references included), [monitor] (honouring a
    "select" object with initial/insert/delete/modify flags),
    [monitor_cancel], [echo].  Malformed input yields an error
    response, never an exception. *)

val poll_notifications : server -> string -> string list
(** Pending "update" notification messages for a registered monitor
    (one per committed transaction). *)

(** {1 Client-side request builders} *)

val request : id:int -> meth:string -> params:Json.t -> string
val transact_request : id:int -> db:string -> Json.t list -> string

val insert_op :
  ?uuid_name:string -> table:string -> (string * Datum.t) list -> Json.t

val delete_op : table:string -> Db.condition list -> Json.t
val update_op : table:string -> Db.condition list -> (string * Datum.t) list -> Json.t
val select_op : ?columns:string list -> table:string -> Db.condition list -> Json.t

val monitor_request :
  id:int -> db:string -> mon_id:string -> (string * string list option) list ->
  string
