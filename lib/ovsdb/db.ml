(* The OVSDB database engine: row storage, atomic transactions with the
   RFC 7047 operation set (insert / select / update / mutate / delete),
   unique-index and referential-integrity enforcement, and monitors that
   stream per-transaction change batches to subscribers — the mechanism
   the Nerpa controller relies on for management-plane synchronisation. *)

type row = (string * Datum.t) list (* every schema column present, sorted *)

exception Db_error of string

let error fmt = Format.kasprintf (fun s -> raise (Db_error s)) fmt

(* Observability (metric names are a public contract, see README). *)
let m_txn_count = Obs.Counter.create "ovsdb.txn.count"
let m_txn_failed = Obs.Counter.create "ovsdb.txn.failed"
let m_monitor_batches = Obs.Counter.create "ovsdb.monitor.batches"
let h_txn = Obs.Histogram.create ~unit_:"us" "ovsdb.txn"

(* ---------------- conditions and mutations ---------------- *)

type cond_op = Eq | Ne | Lt | Gt | Le | Ge | Includes | Excludes

type condition = { ccolumn : string; cop : cond_op; carg : Datum.t }

type mutator = MAdd | MSub | MMul | MDiv | MInsert | MDelete

type mutation = { mcolumn : string; mop : mutator; marg : Datum.t }

type op =
  | Insert of { table : string; row : (string * Datum.t) list; uuid : Uuid.t option }
  | Select of { table : string; where : condition list; columns : string list option }
  | Update of { table : string; where : condition list; row : (string * Datum.t) list }
  | Mutate of { table : string; where : condition list; mutations : mutation list }
  | Delete of { table : string; where : condition list }
  | Abort

type op_result =
  | RInserted of Uuid.t
  | RRows of (Uuid.t * row) list
  | RCount of int
  | RAborted

(* ---------------- monitors ---------------- *)

type row_update = { before : row option; after : row option }

(** One transaction's worth of changes, per table. *)
type table_updates = (string * (Uuid.t * row_update) list) list

(* Which update kinds a monitor wants (RFC 7047 "select"). *)
type select = {
  s_initial : bool;
  s_insert : bool;
  s_delete : bool;
  s_modify : bool;
}

let select_all = { s_initial = true; s_insert = true; s_delete = true; s_modify = true }

type monitor = {
  mon_id : int;
  mon_tables : (string * string list option) list; (* table, column filter *)
  mon_select : select;
  mutable queue : table_updates list;              (* oldest first *)
}

(* ---------------- database ---------------- *)

type table_data = {
  rows : (Uuid.t, row) Hashtbl.t;
  (* one hashtable per unique index: key datums -> uuid *)
  uniques : (string list * (Datum.t list, Uuid.t) Hashtbl.t) list;
}

type t = {
  schema : Schema.t;
  tables : (string, table_data) Hashtbl.t;
  mutable monitors : monitor list;
  mutable next_monitor : int;
  mutable txn_count : int;
}

let create (schema : Schema.t) : t =
  (match Schema.validate schema with
  | Ok () -> ()
  | Error errs -> error "invalid schema: %s" (String.concat "; " errs));
  let tables = Hashtbl.create 16 in
  List.iter
    (fun (tbl : Schema.table) ->
      Hashtbl.add tables tbl.tname
        {
          rows = Hashtbl.create 64;
          uniques = List.map (fun ix -> (ix, Hashtbl.create 64)) tbl.indexes;
        })
    schema.tables;
  { schema; tables; monitors = []; next_monitor = 0; txn_count = 0 }

let table_schema db name =
  match Schema.find_table db.schema name with
  | Some t -> t
  | None -> error "no table %s" name

let table_data db name =
  match Hashtbl.find_opt db.tables name with
  | Some t -> t
  | None -> error "no table %s" name

let row_count db name = Hashtbl.length (table_data db name).rows
let get_row db table uuid = Hashtbl.find_opt (table_data db table).rows uuid

let iter_rows db table f =
  Hashtbl.iter (fun uuid row -> f uuid row) (table_data db table).rows

let fold_rows db table f acc =
  Hashtbl.fold (fun uuid row acc -> f uuid row acc) (table_data db table).rows acc

let column_value (row : row) (column : string) : Datum.t =
  match List.assoc_opt column row with
  | Some d -> d
  | None -> error "row has no column %s" column

(* ---------------- condition evaluation ---------------- *)

let scalar_compare (a : Datum.t) (b : Datum.t) : int option =
  match Datum.as_scalar a, Datum.as_scalar b with
  | Some (Atom.Integer x), Some (Atom.Integer y) -> Some (Int64.compare x y)
  | Some (Atom.Real x), Some (Atom.Real y) -> Some (Float.compare x y)
  | Some (Atom.String x), Some (Atom.String y) -> Some (String.compare x y)
  | _ -> None

let eval_condition (uuid : Uuid.t) (row : row) (c : condition) : bool =
  let actual =
    if String.equal c.ccolumn "_uuid" then Datum.uuid uuid
    else column_value row c.ccolumn
  in
  match c.cop with
  | Eq -> Datum.equal actual c.carg
  | Ne -> not (Datum.equal actual c.carg)
  | Lt | Gt | Le | Ge -> (
    match scalar_compare actual c.carg with
    | None -> error "ordered comparison on non-scalar column %s" c.ccolumn
    | Some cmp -> (
      match c.cop with
      | Lt -> cmp < 0
      | Gt -> cmp > 0
      | Le -> cmp <= 0
      | Ge -> cmp >= 0
      | Eq | Ne | Includes | Excludes -> assert false))
  | Includes -> (
    (* every element of the argument is present in the column *)
    match c.carg, actual with
    | Datum.Set want, Datum.Set have ->
      List.for_all (fun a -> List.exists (Atom.equal a) have) want
    | Datum.Map want, Datum.Map have ->
      List.for_all
        (fun (k, v) ->
          List.exists (fun (k', v') -> Atom.equal k k' && Atom.equal v v') have)
        want
    | _ -> false)
  | Excludes -> (
    match c.carg, actual with
    | Datum.Set want, Datum.Set have ->
      List.for_all (fun a -> not (List.exists (Atom.equal a) have)) want
    | Datum.Map want, Datum.Map have ->
      List.for_all
        (fun (k, v) ->
          not
            (List.exists (fun (k', v') -> Atom.equal k k' && Atom.equal v v') have))
        want
    | _ -> true)

let matching_rows db table (where : condition list) : (Uuid.t * row) list =
  fold_rows db table
    (fun uuid row acc ->
      if List.for_all (eval_condition uuid row) where then (uuid, row) :: acc
      else acc)
    []

(* ---------------- mutators ---------------- *)

let apply_mutation (tbl : Schema.table) (row : row) (m : mutation) : row =
  let col =
    match Schema.find_column tbl m.mcolumn with
    | Some c -> c
    | None -> error "%s: no column %s" tbl.tname m.mcolumn
  in
  if not col.mutable_ then error "%s.%s is immutable" tbl.tname m.mcolumn;
  let current = column_value row m.mcolumn in
  let arith f_int f_real =
    match current, Datum.as_scalar m.marg with
    | Datum.Set atoms, Some (Atom.Integer y) ->
      Datum.Set
        (List.map
           (function
             | Atom.Integer x -> Atom.Integer (f_int x y)
             | a -> error "arithmetic mutation on non-integer %s" (Atom.to_string a))
           atoms)
    | Datum.Set atoms, Some (Atom.Real y) ->
      Datum.Set
        (List.map
           (function
             | Atom.Real x -> Atom.Real (f_real x y)
             | a -> error "arithmetic mutation on non-real %s" (Atom.to_string a))
           atoms)
    | _ -> error "bad arithmetic mutation on %s" m.mcolumn
  in
  let updated =
    match m.mop with
    | MAdd -> arith Int64.add ( +. )
    | MSub -> arith Int64.sub ( -. )
    | MMul -> arith Int64.mul ( *. )
    | MDiv ->
      arith
        (fun x y -> if y = 0L then error "division by zero" else Int64.div x y)
        (fun x y -> x /. y)
    | MInsert -> (
      match current, m.marg with
      | Datum.Set have, Datum.Set add ->
        Datum.set (have @ add)
      | Datum.Map have, Datum.Map add ->
        (* insert does not overwrite existing keys *)
        let keep (k, _) = not (List.exists (fun (k', _) -> Atom.equal k k') have) in
        Datum.map (have @ List.filter keep add)
      | _ -> error "insert mutation type mismatch on %s" m.mcolumn)
    | MDelete -> (
      match current, m.marg with
      | Datum.Set have, Datum.Set del ->
        Datum.Set (List.filter (fun a -> not (List.exists (Atom.equal a) del)) have)
      | Datum.Map have, Datum.Map del ->
        Datum.Map
          (List.filter
             (fun (k, v) ->
               not
                 (List.exists
                    (fun (k', v') -> Atom.equal k k' && Atom.equal v v')
                    del))
             have)
      | Datum.Map have, Datum.Set keys ->
        (* deleting by key set *)
        Datum.Map
          (List.filter
             (fun (k, _) -> not (List.exists (Atom.equal k) keys))
             have)
      | _ -> error "delete mutation type mismatch on %s" m.mcolumn)
  in
  (match Otype.check col.ctype updated with
  | Ok () -> ()
  | Error msg -> error "%s.%s: %s" tbl.tname m.mcolumn msg);
  List.map
    (fun (c, d) -> if String.equal c m.mcolumn then (c, updated) else (c, d))
    row

(* ---------------- transactions ---------------- *)

(* Undo log entry: the state of (table, uuid) when first touched. *)
type undo = (string * Uuid.t * row option) list ref

let unique_key (index : string list) (row : row) : Datum.t list =
  List.map (fun c -> column_value row c) index

let index_remove db table (uuid : Uuid.t) (row : row) =
  let data = table_data db table in
  List.iter
    (fun (index, tbl) ->
      let key = unique_key index row in
      match Hashtbl.find_opt tbl key with
      | Some u when Uuid.equal u uuid -> Hashtbl.remove tbl key
      | _ -> ())
    data.uniques

let index_add db table (uuid : Uuid.t) (row : row) =
  let data = table_data db table in
  List.iter
    (fun (index, tbl) ->
      let key = unique_key index row in
      (match Hashtbl.find_opt tbl key with
      | Some other when not (Uuid.equal other uuid) ->
        error "%s: unique index (%s) violated" table (String.concat ", " index)
      | _ -> ());
      Hashtbl.replace tbl key uuid)
    data.uniques

(* Record the pre-image of a row the first time the transaction touches
   it. *)
let remember (undo : undo) db table uuid =
  if
    not
      (List.exists
         (fun (t, u, _) -> String.equal t table && Uuid.equal u uuid)
         !undo)
  then undo := (table, uuid, get_row db table uuid) :: !undo

let put_row db table uuid row =
  let data = table_data db table in
  (match Hashtbl.find_opt data.rows uuid with
  | Some old -> index_remove db table uuid old
  | None -> ());
  index_add db table uuid row;
  Hashtbl.replace data.rows uuid row

let remove_row db table uuid =
  let data = table_data db table in
  match Hashtbl.find_opt data.rows uuid with
  | Some old ->
    index_remove db table uuid old;
    Hashtbl.remove data.rows uuid
  | None -> ()

(* Build a full row from user-supplied columns plus defaults, checking
   types and unknown columns. *)
let complete_row db table (supplied : (string * Datum.t) list) : row =
  let tbl = table_schema db table in
  List.iter
    (fun (c, _) ->
      if Schema.find_column tbl c = None then error "%s: no column %s" table c)
    supplied;
  List.map
    (fun (col : Schema.column) ->
      match List.assoc_opt col.cname supplied with
      | Some d -> (
        match Otype.check col.ctype d with
        | Ok () -> (col.cname, d)
        | Error msg -> error "%s.%s: %s" table col.cname msg)
      | None -> (col.cname, Otype.default col.ctype))
    tbl.columns

(* Referential integrity: every uuid stored in a refTable column of the
   row must identify an existing row of the referenced table. *)
let check_references db table (row : row) =
  let tbl = table_schema db table in
  List.iter
    (fun (col : Schema.column) ->
      match col.ctype.Otype.key.ref_table with
      | None -> ()
      | Some target ->
        let atoms =
          match column_value row col.cname with
          | Datum.Set atoms -> atoms
          | Datum.Map pairs -> List.map fst pairs
        in
        List.iter
          (function
            | Atom.Uuid u ->
              if get_row db target u = None then
                error "%s.%s: dangling reference %s to table %s" table col.cname
                  (Uuid.to_string u) target
            | _ -> ())
          atoms)
    tbl.columns

let exec_op db (undo : undo) (op : op) : op_result =
  match op with
  | Insert { table; row; uuid } ->
    let tbl = table_schema db table in
    ignore tbl;
    let uuid = match uuid with Some u -> u | None -> Uuid.fresh () in
    if get_row db table uuid <> None then
      error "%s: duplicate row uuid %s" table (Uuid.to_string uuid);
    let full = complete_row db table row in
    remember undo db table uuid;
    put_row db table uuid full;
    RInserted uuid
  | Select { table; where; columns } ->
    let rows = matching_rows db table where in
    let project (uuid, row) =
      match columns with
      | None -> (uuid, row)
      | Some cols ->
        (uuid, List.filter (fun (c, _) -> List.mem c cols) row)
    in
    RRows (List.map project rows)
  | Update { table; where; row = assignments } ->
    let tbl = table_schema db table in
    List.iter
      (fun (c, d) ->
        match Schema.find_column tbl c with
        | None -> error "%s: no column %s" table c
        | Some col ->
          if not col.mutable_ then error "%s.%s is immutable" table c;
          (match Otype.check col.ctype d with
          | Ok () -> ()
          | Error msg -> error "%s.%s: %s" table c msg))
      assignments;
    let victims = matching_rows db table where in
    List.iter
      (fun (uuid, row) ->
        remember undo db table uuid;
        let row' =
          List.map
            (fun (c, d) ->
              match List.assoc_opt c assignments with
              | Some d' -> (c, d')
              | None -> (c, d))
            row
        in
        put_row db table uuid row')
      victims;
    RCount (List.length victims)
  | Mutate { table; where; mutations } ->
    let tbl = table_schema db table in
    let victims = matching_rows db table where in
    List.iter
      (fun (uuid, row) ->
        remember undo db table uuid;
        let row' = List.fold_left (apply_mutation tbl) row mutations in
        put_row db table uuid row')
      victims;
    RCount (List.length victims)
  | Delete { table; where } ->
    let victims = matching_rows db table where in
    List.iter
      (fun (uuid, _) ->
        remember undo db table uuid;
        remove_row db table uuid)
      victims;
    RCount (List.length victims)
  | Abort -> error "aborted by request"

let rollback db (undo : undo) =
  List.iter
    (fun (table, uuid, old) ->
      match old with
      | Some row -> put_row db table uuid row
      | None -> remove_row db table uuid)
    !undo

(* Deliver the transaction's changes to every monitor. *)
let notify_monitors db (undo : undo) =
  if db.monitors <> [] && !undo <> [] then begin
    let changes =
      List.filter_map
        (fun (table, uuid, before) ->
          let after = get_row db table uuid in
          match before, after with
          | None, None -> None
          | Some b, Some a when b = a -> None (* touched but unchanged *)
          | _ -> Some (table, uuid, { before; after }))
        !undo
    in
    if changes <> [] then
      List.iter
        (fun mon ->
          let wanted (upd : row_update) =
            match upd.before, upd.after with
            | None, Some _ -> mon.mon_select.s_insert
            | Some _, None -> mon.mon_select.s_delete
            | Some _, Some _ -> mon.mon_select.s_modify
            | None, None -> false
          in
          let relevant =
            List.filter_map
              (fun (mtable, cols) ->
                let rows =
                  List.filter_map
                    (fun (table, uuid, upd) ->
                      if String.equal table mtable && wanted upd then
                        let filter r =
                          match cols with
                          | None -> r
                          | Some cs -> List.filter (fun (c, _) -> List.mem c cs) r
                        in
                        Some
                          ( uuid,
                            {
                              before = Option.map filter upd.before;
                              after = Option.map filter upd.after;
                            } )
                      else None)
                    changes
                in
                if rows = [] then None else Some (mtable, rows))
              mon.mon_tables
          in
          if relevant <> [] then begin
            Obs.Counter.incr m_monitor_batches;
            mon.queue <- mon.queue @ [ relevant ]
          end)
        db.monitors
  end

(** Execute [ops] atomically.  On error every op is rolled back and
    [Error message] is returned; on success the per-op results are
    returned and monitors are notified with the batched changes. *)
let transact (db : t) (ops : op list) : (op_result list, string) result =
  Obs.Histogram.time h_txn @@ fun () ->
  let undo : undo = ref [] in
  match List.map (exec_op db undo) ops with
  | results ->
    (* Post-conditions checked at commit: referential integrity of every
       touched row that still exists. *)
    (try
       List.iter
         (fun (table, uuid, _) ->
           match get_row db table uuid with
           | Some row -> check_references db table row
           | None -> ())
         !undo;
       db.txn_count <- db.txn_count + 1;
       Obs.Counter.incr m_txn_count;
       notify_monitors db undo;
       Ok results
     with Db_error msg ->
       rollback db undo;
       Obs.Counter.incr m_txn_failed;
       Error msg)
  | exception Db_error msg ->
    rollback db undo;
    Obs.Counter.incr m_txn_failed;
    Error msg

let transact_exn db ops =
  match transact db ops with
  | Ok results -> results
  | Error msg -> error "%s" msg

(* ---------------- monitor API ---------------- *)

(** Register a monitor over [tables] (with optional column filters).
    The current contents are delivered immediately as an initial batch
    of inserts, followed by one batch per committed transaction. *)
let add_monitor ?(select = select_all) (db : t)
    (tables : (string * string list option) list) : monitor =
  List.iter (fun (tname, _) -> ignore (table_schema db tname)) tables;
  let mon =
    { mon_id = db.next_monitor; mon_tables = tables; mon_select = select;
      queue = [] }
  in
  db.next_monitor <- db.next_monitor + 1;
  if select.s_initial then begin
    let initial =
      List.filter_map
        (fun (tname, cols) ->
          let rows =
            fold_rows db tname
              (fun uuid row acc ->
                let filter r =
                  match cols with
                  | None -> r
                  | Some cs -> List.filter (fun (c, _) -> List.mem c cs) r
                in
                (uuid, { before = None; after = Some (filter row) }) :: acc)
              []
          in
          if rows = [] then None else Some (tname, rows))
        tables
    in
    if initial <> [] then mon.queue <- [ initial ]
  end;
  db.monitors <- mon :: db.monitors;
  mon

(** Drain the monitor's queued batches (oldest first). *)
let poll (mon : monitor) : table_updates list =
  let batches = mon.queue in
  mon.queue <- [];
  batches

let cancel_monitor (db : t) (mon : monitor) =
  db.monitors <- List.filter (fun m -> m.mon_id <> mon.mon_id) db.monitors

(** Current contents of every schema table as one batch of insertions —
    the payload of a monitor resync (see Nerpa's driver). *)
let snapshot (db : t) : table_updates =
  List.map
    (fun (tbl : Schema.table) ->
      let rows =
        fold_rows db tbl.tname
          (fun uuid row acc ->
            (uuid, { before = None; after = Some row }) :: acc)
          []
      in
      (tbl.tname, rows))
    db.schema.tables

(* ---------------- convenience helpers ---------------- *)

let eq column datum = { ccolumn = column; cop = Eq; carg = datum }

let insert ?uuid db table row =
  match transact db [ Insert { table; row; uuid } ] with
  | Ok [ RInserted u ] -> Ok u
  | Ok _ -> assert false
  | Error e -> Error e

let insert_exn ?uuid db table row =
  match insert ?uuid db table row with
  | Ok u -> u
  | Error e -> error "%s" e
