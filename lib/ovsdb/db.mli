(** The OVSDB database engine: row storage, atomic transactions with
    the RFC 7047 operation set, unique-index and referential-integrity
    enforcement, and monitors that stream per-transaction change
    batches to subscribers — the mechanism the Nerpa controller relies
    on for management-plane synchronisation. *)

type row = (string * Datum.t) list
(** A stored row: every schema column present, in schema order. *)

exception Db_error of string

(** {1 Conditions and mutations} *)

type cond_op = Eq | Ne | Lt | Gt | Le | Ge | Includes | Excludes

type condition = { ccolumn : string; cop : cond_op; carg : Datum.t }
(** A predicate over one column; the pseudo-column ["_uuid"] addresses
    the row identifier. *)

type mutator = MAdd | MSub | MMul | MDiv | MInsert | MDelete

type mutation = { mcolumn : string; mop : mutator; marg : Datum.t }

type op =
  | Insert of { table : string; row : (string * Datum.t) list; uuid : Uuid.t option }
      (** omitted columns take their type's default; [uuid] is
          generated when [None] *)
  | Select of { table : string; where : condition list; columns : string list option }
  | Update of { table : string; where : condition list; row : (string * Datum.t) list }
  | Mutate of { table : string; where : condition list; mutations : mutation list }
  | Delete of { table : string; where : condition list }
  | Abort  (** force the transaction to fail *)

type op_result =
  | RInserted of Uuid.t
  | RRows of (Uuid.t * row) list
  | RCount of int
  | RAborted

(** {1 Monitors} *)

type row_update = { before : row option; after : row option }
(** [before = None]: insertion; [after = None]: deletion; both present:
    modification. *)

type table_updates = (string * (Uuid.t * row_update) list) list
(** One committed transaction's changes, grouped by table. *)

(** Which update kinds a monitor receives (RFC 7047 "select"). *)
type select = {
  s_initial : bool;  (** deliver current contents on registration *)
  s_insert : bool;
  s_delete : bool;
  s_modify : bool;
}

val select_all : select

type monitor

(** {1 The database} *)

type t = { schema : Schema.t; tables : (string, table_data) Hashtbl.t;
           mutable monitors : monitor list; mutable next_monitor : int;
           mutable txn_count : int }

and table_data

val create : Schema.t -> t
(** @raise Db_error if the schema does not validate. *)

val row_count : t -> string -> int
val get_row : t -> string -> Uuid.t -> row option
val iter_rows : t -> string -> (Uuid.t -> row -> unit) -> unit
val fold_rows : t -> string -> (Uuid.t -> row -> 'a -> 'a) -> 'a -> 'a

val column_value : row -> string -> Datum.t
(** @raise Db_error if the column is absent. *)

val transact : t -> op list -> (op_result list, string) result
(** Execute the operations atomically: on any error (type or range
    violation, unique-index collision, dangling reference, [Abort])
    every operation is rolled back.  On success, monitors receive the
    batched changes. *)

val transact_exn : t -> op list -> op_result list
(** @raise Db_error instead of returning [Error]. *)

(** {1 Monitor API} *)

val add_monitor :
  ?select:select -> t -> (string * string list option) list -> monitor
(** Register a monitor over tables (with optional column filters).
    With [s_initial] (the default) the current contents are queued
    immediately as a batch of insertions; thereafter one batch arrives
    per committed transaction, filtered to the selected update kinds. *)

val poll : monitor -> table_updates list
(** Drain the queued batches, oldest first. *)

val cancel_monitor : t -> monitor -> unit

val snapshot : t -> table_updates
(** The database's current contents as one batch of insertions over
    every schema table — the payload of a monitor resync: a client that
    lost monitor batches diffs this against its own inputs and applies
    the correction as a single transaction. *)

(** {1 Convenience} *)

val eq : string -> Datum.t -> condition
val insert : ?uuid:Uuid.t -> t -> string -> (string * Datum.t) list -> (Uuid.t, string) result
val insert_exn : ?uuid:Uuid.t -> t -> string -> (string * Datum.t) list -> Uuid.t
