(* Compact binary encoding for the hot wire messages (the "binary
   codec" negotiated by lib/transport frames).  JSON (see Rpc) remains
   the interoperability fallback; this encoding exists purely to keep
   the per-message cost of the socket transport off the sync hot path.

   Layout conventions: one-byte tags, unsigned LEB128 varints for
   lengths and small non-negative ints, 8-byte big-endian int64s for
   values (including float bits), length-prefixed strings.  Decoding
   is strict and total: every read is bounds-checked, every tag is
   matched exhaustively, declared lengths are validated against the
   remaining input, and the top-level [decode] demands full
   consumption — corrupt or truncated input yields [Error], never an
   exception and never an unbounded allocation. *)

exception Error of string

let fail fmt = Printf.ksprintf (fun m -> raise (Error m)) fmt

(* ---------------- writer ---------------- *)

type writer = Buffer.t

let writer () = Buffer.create 256
let contents = Buffer.contents
let w_u8 b v = Buffer.add_char b (Char.chr (v land 0xff))

let w_varint b n =
  if n < 0 then invalid_arg "Binc.w_varint: negative";
  let rec go n =
    if n < 0x80 then w_u8 b n
    else begin
      w_u8 b (0x80 lor (n land 0x7f));
      go (n lsr 7)
    end
  in
  go n

let w_int64 b v = Buffer.add_int64_be b v
let w_float b f = Buffer.add_int64_be b (Int64.bits_of_float f)
let w_bool b v = w_u8 b (if v then 1 else 0)

let w_string b s =
  w_varint b (String.length s);
  Buffer.add_string b s

let w_list w b l =
  w_varint b (List.length l);
  List.iter (w b) l

let w_option w b = function
  | None -> w_u8 b 0
  | Some v ->
    w_u8 b 1;
    w v

let to_string w v =
  let b = writer () in
  w b v;
  contents b

(* ---------------- reader ---------------- *)

type reader = { src : string; mutable pos : int }

let reader s = { src = s; pos = 0 }
let remaining r = String.length r.src - r.pos

let r_u8 r =
  if r.pos >= String.length r.src then fail "truncated (u8)"
  else begin
    let c = Char.code r.src.[r.pos] in
    r.pos <- r.pos + 1;
    c
  end

let r_varint r =
  let rec go acc shift =
    if shift > 56 then fail "varint too long"
    else
      let b = r_u8 r in
      let acc = acc lor ((b land 0x7f) lsl shift) in
      if b land 0x80 = 0 then acc else go acc (shift + 7)
  in
  let n = go 0 0 in
  if n < 0 then fail "varint overflow" else n

let r_int64 r =
  if remaining r < 8 then fail "truncated (int64)"
  else begin
    let v = String.get_int64_be r.src r.pos in
    r.pos <- r.pos + 8;
    v
  end

let r_float r = Int64.float_of_bits (r_int64 r)

let r_bool r =
  match r_u8 r with
  | 0 -> false
  | 1 -> true
  | b -> fail "bad bool byte %d" b

let r_string r =
  let n = r_varint r in
  if n > remaining r then fail "string length %d exceeds input" n
  else begin
    let s = String.sub r.src r.pos n in
    r.pos <- r.pos + n;
    s
  end

let r_list f r =
  let n = r_varint r in
  (* every element costs at least one byte: a corrupt count cannot
     demand more elements than there are bytes left *)
  if n > remaining r then fail "list length %d exceeds input" n
  else begin
    let rec go acc i = if i = 0 then List.rev acc else go (f r :: acc) (i - 1) in
    go [] n
  end

let r_option f r =
  match r_u8 r with
  | 0 -> None
  | 1 -> Some (f r)
  | b -> fail "bad option byte %d" b

let decode f s =
  let r = reader s in
  match f r with
  | v -> if r.pos = String.length s then Ok v else Result.Error "trailing bytes"
  | exception Error m -> Result.Error m

(* ---------------- database values ---------------- *)

let w_atom b = function
  | Atom.Integer v ->
    w_u8 b 0;
    w_int64 b v
  | Atom.Real f ->
    w_u8 b 1;
    w_float b f
  | Atom.Boolean v ->
    w_u8 b 2;
    w_bool b v
  | Atom.String s ->
    w_u8 b 3;
    w_string b s
  | Atom.Uuid u ->
    w_u8 b 4;
    w_string b (Uuid.to_string u)

let r_uuid r =
  let s = r_string r in
  match Uuid.of_string_opt s with
  | Some u -> u
  | None -> fail "bad uuid %S" s

let r_atom r =
  match r_u8 r with
  | 0 -> Atom.Integer (r_int64 r)
  | 1 -> Atom.Real (r_float r)
  | 2 -> Atom.Boolean (r_bool r)
  | 3 -> Atom.String (r_string r)
  | 4 -> Atom.Uuid (r_uuid r)
  | t -> fail "bad atom tag %d" t

let w_datum b = function
  | Datum.Set atoms ->
    w_u8 b 0;
    w_list w_atom b atoms
  | Datum.Map pairs ->
    w_u8 b 1;
    w_list
      (fun b (k, v) ->
        w_atom b k;
        w_atom b v)
      b pairs

(* Re-canonicalise through the Datum constructors: the invariants
   (sortedness, duplicate-freedom) must hold even for bytes a peer
   forged or corrupted. *)
let r_datum r =
  match r_u8 r with
  | 0 -> Datum.set (r_list r_atom r)
  | 1 ->
    Datum.map
      (r_list
         (fun r ->
           let k = r_atom r in
           let v = r_atom r in
           (k, v))
         r)
  | t -> fail "bad datum tag %d" t

let w_row b (row : Db.row) =
  w_list
    (fun b (c, d) ->
      w_string b c;
      w_datum b d)
    b row

let r_row r : Db.row =
  r_list
    (fun r ->
      let c = r_string r in
      let d = r_datum r in
      (c, d))
    r

let w_row_update b (u : Db.row_update) =
  w_option (w_row b) b u.Db.before;
  w_option (w_row b) b u.Db.after

let r_row_update r : Db.row_update =
  let before = r_option r_row r in
  let after = r_option r_row r in
  { Db.before; after }

let w_table_updates b (batch : Db.table_updates) =
  w_list
    (fun b (table, rows) ->
      w_string b table;
      w_list
        (fun b (uuid, upd) ->
          w_string b (Uuid.to_string uuid);
          w_row_update b upd)
        b rows)
    b batch

let r_table_updates r : Db.table_updates =
  r_list
    (fun r ->
      let table = r_string r in
      let rows =
        r_list
          (fun r ->
            let uuid = r_uuid r in
            let upd = r_row_update r in
            (uuid, upd))
          r
      in
      (table, rows))
    r
