(* The OVSDB JSON-RPC wire protocol (RFC 7047 §4): request/response
   framing and the encoding of transact operations, conditions,
   mutations and monitor updates.

   The server here is in-process — [handle] consumes a request string
   and produces a response string — but the messages are the real
   protocol shape, so a socket transport could be layered on without
   touching this module. *)

exception Protocol_error of string

let perror fmt = Format.kasprintf (fun s -> raise (Protocol_error s)) fmt

(* ---------------- encoding database values ---------------- *)

let condition_to_json (c : Db.condition) : Json.t =
  let op =
    match c.cop with
    | Db.Eq -> "=="
    | Db.Ne -> "!="
    | Db.Lt -> "<"
    | Db.Gt -> ">"
    | Db.Le -> "<="
    | Db.Ge -> ">="
    | Db.Includes -> "includes"
    | Db.Excludes -> "excludes"
  in
  Json.List [ Json.String c.ccolumn; Json.String op; Datum.to_json c.carg ]

let condition_of_json (j : Json.t) : Db.condition =
  match j with
  | Json.List [ Json.String col; Json.String op; arg ] ->
    let cop =
      match op with
      | "==" -> Db.Eq
      | "!=" -> Db.Ne
      | "<" -> Db.Lt
      | ">" -> Db.Gt
      | "<=" -> Db.Le
      | ">=" -> Db.Ge
      | "includes" -> Db.Includes
      | "excludes" -> Db.Excludes
      | op -> perror "unknown condition operator %s" op
    in
    (match Datum.of_json arg with
    | Ok carg -> { Db.ccolumn = col; cop; carg }
    | Error e -> perror "bad condition argument: %s" e)
  | j -> perror "bad condition: %s" (Json.to_string j)

let mutation_of_json (j : Json.t) : Db.mutation =
  match j with
  | Json.List [ Json.String col; Json.String op; arg ] ->
    let mop =
      match op with
      | "+=" -> Db.MAdd
      | "-=" -> Db.MSub
      | "*=" -> Db.MMul
      | "/=" -> Db.MDiv
      | "insert" -> Db.MInsert
      | "delete" -> Db.MDelete
      | op -> perror "unknown mutator %s" op
    in
    (match Datum.of_json arg with
    | Ok marg -> { Db.mcolumn = col; mop; marg }
    | Error e -> perror "bad mutation argument: %s" e)
  | j -> perror "bad mutation: %s" (Json.to_string j)

let row_to_json (row : Db.row) : Json.t =
  Json.Obj (List.map (fun (c, d) -> (c, Datum.to_json d)) row)

(* Rows on the wire may contain ["named-uuid", name] references which we
   resolve against the transaction's symbol table. *)
let row_of_json ~(named : (string, Uuid.t) Hashtbl.t) (j : Json.t) :
    (string * Datum.t) list =
  match j with
  | Json.Obj fields ->
    List.map
      (fun (c, v) ->
        let resolve = function
          | Json.List [ Json.String "named-uuid"; Json.String n ] -> (
            match Hashtbl.find_opt named n with
            | Some u -> Json.List [ Json.String "uuid"; Json.String (Uuid.to_string u) ]
            | None -> perror "unknown named-uuid %s" n)
          | j -> j
        in
        let v =
          match v with
          | Json.List [ Json.String "set"; Json.List l ] ->
            Json.List [ Json.String "set"; Json.List (List.map resolve l) ]
          | Json.List [ Json.String "map"; Json.List l ] ->
            Json.List
              [ Json.String "map";
                Json.List
                  (List.map
                     (function
                       | Json.List [ k; v ] -> Json.List [ resolve k; resolve v ]
                       | j -> j)
                     l) ]
          | j -> resolve j
        in
        match Datum.of_json v with
        | Ok d -> (c, d)
        | Error e -> perror "column %s: %s" c e)
      fields
  | j -> perror "bad row: %s" (Json.to_string j)

(* A transact operation from its wire form.  Insert operations carrying
   a "uuid-name" get a pre-allocated UUID recorded in [named] so that
   later (or earlier — the caller pre-scans) operations can reference
   it. *)
let op_of_json ~named (j : Json.t) : Db.op =
  let table o =
    match Json.member "table" o with
    | Some (Json.String t) -> t
    | _ -> perror "op missing table"
  in
  let where o =
    match Json.member "where" o with
    | Some (Json.List conds) -> List.map condition_of_json conds
    | _ -> perror "op missing where"
  in
  match j with
  | Json.Obj _ as o -> (
    match Json.member "op" o with
    | Some (Json.String "insert") ->
      let row =
        match Json.member "row" o with
        | Some r -> row_of_json ~named r
        | None -> []
      in
      let uuid =
        match Json.member "uuid-name" o with
        | Some (Json.String n) -> Hashtbl.find_opt named n
        | _ -> None
      in
      Db.Insert { table = table o; row; uuid }
    | Some (Json.String "select") ->
      let columns =
        match Json.member "columns" o with
        | Some (Json.List cols) ->
          Some (List.map Json.to_string_exn cols)
        | _ -> None
      in
      Db.Select { table = table o; where = where o; columns }
    | Some (Json.String "update") ->
      let row =
        match Json.member "row" o with
        | Some r -> row_of_json ~named r
        | None -> perror "update missing row"
      in
      Db.Update { table = table o; where = where o; row }
    | Some (Json.String "mutate") ->
      let mutations =
        match Json.member "mutations" o with
        | Some (Json.List ms) -> List.map mutation_of_json ms
        | _ -> perror "mutate missing mutations"
      in
      Db.Mutate { table = table o; where = where o; mutations }
    | Some (Json.String "delete") -> Db.Delete { table = table o; where = where o }
    | Some (Json.String "abort") -> Db.Abort
    | Some (Json.String op) -> perror "unknown op %s" op
    | _ -> perror "op object missing op field")
  | j -> perror "bad op: %s" (Json.to_string j)

let op_result_to_json : Db.op_result -> Json.t = function
  | Db.RInserted u ->
    Json.Obj [ ("uuid", Json.List [ Json.String "uuid"; Json.String (Uuid.to_string u) ]) ]
  | Db.RRows rows ->
    Json.Obj
      [ ("rows",
         Json.List
           (List.map
              (fun (u, row) ->
                match row_to_json row with
                | Json.Obj fields ->
                  Json.Obj
                    (("_uuid",
                      Json.List [ Json.String "uuid"; Json.String (Uuid.to_string u) ])
                    :: fields)
                | _ -> assert false)
              rows)) ]
  | Db.RCount n -> Json.Obj [ ("count", Json.Int (Int64.of_int n)) ]
  | Db.RAborted -> Json.Obj [ ("error", Json.String "aborted") ]

let updates_to_json (batch : Db.table_updates) : Json.t =
  Json.Obj
    (List.map
       (fun (table, rows) ->
         ( table,
           Json.Obj
             (List.map
                (fun (uuid, (upd : Db.row_update)) ->
                  let fields = [] in
                  let fields =
                    match upd.before with
                    | Some r -> fields @ [ ("old", row_to_json r) ]
                    | None -> fields
                  in
                  let fields =
                    match upd.after with
                    | Some r -> fields @ [ ("new", row_to_json r) ]
                    | None -> fields
                  in
                  (Uuid.to_string uuid, Json.Obj fields))
                rows) ))
       batch)

(* The inverse of [updates_to_json]: decode a monitor-update wire
   object back into table updates.  Named-uuid references never appear
   in monitor updates, so rows decode against an empty symbol table. *)
let updates_of_json (j : Json.t) : Db.table_updates =
  let no_named : (string, Uuid.t) Hashtbl.t = Hashtbl.create 0 in
  let row_update_of_json u =
    let side name =
      match Json.member name u with
      | Some r -> Some (row_of_json ~named:no_named r)
      | None -> None
    in
    { Db.before = side "old"; after = side "new" }
  in
  match j with
  | Json.Obj tables ->
    List.map
      (fun (table, rows) ->
        match rows with
        | Json.Obj rows ->
          ( table,
            List.map
              (fun (uuid_s, upd) ->
                match Uuid.of_string_opt uuid_s with
                | Some uuid -> (uuid, row_update_of_json upd)
                | None -> perror "bad row uuid %s" uuid_s)
              rows )
        | j -> perror "bad table update: %s" (Json.to_string j))
      tables
  | j -> perror "bad updates object: %s" (Json.to_string j)

(* Binary form of the same monitor-update payload, for peers that
   negotiated the compact codec (see Binc): identical information,
   none of the JSON text cost. *)
let updates_to_binary (batch : Db.table_updates) : string =
  Binc.to_string Binc.w_table_updates batch

let updates_of_binary (s : string) : (Db.table_updates, string) result =
  Binc.decode Binc.r_table_updates s

(* ---------------- server ---------------- *)

type server = {
  db : Db.t;
  mutable rpc_monitors : (string * Db.monitor) list; (* monitor id -> monitor *)
}

let serve (db : Db.t) : server = { db; rpc_monitors = [] }

let response ~id body = Json.Obj [ ("id", id); ("result", body); ("error", Json.Null) ]

let error_response ~id msg =
  Json.Obj [ ("id", id); ("result", Json.Null); ("error", Json.String msg) ]

(** Handle one JSON-RPC request (a JSON text) and return the response
    text.  Supported methods: list_dbs, get_schema, transact, monitor,
    monitor_cancel, echo. *)
let handle (srv : server) (request : string) : string =
  let j =
    try Json.of_string request
    with Json.Parse_error e -> Json.Obj [ ("bad", Json.String e) ]
  in
  let id = Option.value ~default:Json.Null (Json.member "id" j) in
  let reply =
    try
      match Json.member "method" j, Json.member "params" j with
      | Some (Json.String "echo"), Some params -> response ~id params
      | Some (Json.String "list_dbs"), _ ->
        response ~id (Json.List [ Json.String srv.db.Db.schema.Schema.name ])
      | Some (Json.String "get_schema"), _ ->
        response ~id (Schema.to_json srv.db.Db.schema)
      | Some (Json.String "transact"), Some (Json.List (_db :: ops_json)) ->
        (* Pre-scan for uuid-names so forward references resolve. *)
        let named = Hashtbl.create 4 in
        List.iter
          (fun op ->
            match Json.member "uuid-name" op with
            | Some (Json.String n) ->
              if Hashtbl.mem named n then perror "duplicate uuid-name %s" n;
              Hashtbl.add named n (Uuid.fresh ())
            | _ -> ())
          ops_json;
        let ops = List.map (op_of_json ~named) ops_json in
        (match Db.transact srv.db ops with
        | Ok results -> response ~id (Json.List (List.map op_result_to_json results))
        | Error msg ->
          response ~id
            (Json.List [ Json.Obj [ ("error", Json.String msg) ] ]))
      | Some (Json.String "monitor"), Some (Json.List [ _db; Json.String mon_id; Json.Obj specs ])
        ->
        let tables =
          List.map
            (fun (tname, spec) ->
              let cols =
                match Json.member "columns" spec with
                | Some (Json.List cs) -> Some (List.map Json.to_string_exn cs)
                | _ -> None
              in
              (tname, cols))
            specs
        in
        (* Per RFC 7047 each table spec may carry a "select" object; we
           support one select across the monitor (the intersection of
           the protocol's common use). *)
        let select =
          let flag name dflt =
            List.fold_left
              (fun acc (_, spec) ->
                match Json.member "select" spec with
                | Some sel -> (
                  match Json.member name sel with
                  | Some (Json.Bool b) -> b
                  | _ -> acc)
                | None -> acc)
              dflt specs
          in
          {
            Db.s_initial = flag "initial" true;
            s_insert = flag "insert" true;
            s_delete = flag "delete" true;
            s_modify = flag "modify" true;
          }
        in
        let mon = Db.add_monitor ~select srv.db tables in
        srv.rpc_monitors <- (mon_id, mon) :: srv.rpc_monitors;
        (* The reply carries the initial contents. *)
        let initial =
          match Db.poll mon with
          | [] -> Json.Obj []
          | batches ->
            (* merge the (single) initial batch *)
            updates_to_json (List.concat batches)
        in
        response ~id initial
      | Some (Json.String "monitor_cancel"), Some (Json.List [ Json.String mon_id ]) ->
        (match List.assoc_opt mon_id srv.rpc_monitors with
        | Some mon ->
          Db.cancel_monitor srv.db mon;
          srv.rpc_monitors <- List.remove_assoc mon_id srv.rpc_monitors;
          response ~id (Json.Obj [])
        | None -> error_response ~id (Printf.sprintf "unknown monitor %s" mon_id))
      | Some (Json.String m), _ ->
        error_response ~id ("unknown method or malformed params: " ^ m)
      | Some _, _ -> error_response ~id "method must be a string"
      | None, _ -> error_response ~id "missing method"
    with
    | Protocol_error msg -> error_response ~id msg
    | Db.Db_error msg -> error_response ~id msg
  in
  Json.to_string reply

(** Pending "update" notifications for a registered monitor, as wire
    messages (one per committed transaction). *)
let poll_notifications (srv : server) (mon_id : string) : string list =
  match List.assoc_opt mon_id srv.rpc_monitors with
  | None -> []
  | Some mon ->
    List.map
      (fun batch ->
        Json.to_string
          (Json.Obj
             [
               ("id", Json.Null);
               ("method", Json.String "update");
               ("params", Json.List [ Json.String mon_id; updates_to_json batch ]);
             ]))
      (Db.poll mon)

(* ---------------- client-side request builders ---------------- *)

let request ~id ~meth ~params =
  Json.to_string
    (Json.Obj
       [ ("id", Json.Int (Int64.of_int id));
         ("method", Json.String meth);
         ("params", params) ])

let transact_request ~id ~db (ops : Json.t list) =
  request ~id ~meth:"transact" ~params:(Json.List (Json.String db :: ops))

let insert_op ?uuid_name ~table (row : (string * Datum.t) list) : Json.t =
  let fields =
    [ ("op", Json.String "insert");
      ("table", Json.String table);
      ("row", Json.Obj (List.map (fun (c, d) -> (c, Datum.to_json d)) row)) ]
  in
  let fields =
    match uuid_name with
    | Some n -> fields @ [ ("uuid-name", Json.String n) ]
    | None -> fields
  in
  Json.Obj fields

let delete_op ~table (where : Db.condition list) : Json.t =
  Json.Obj
    [ ("op", Json.String "delete");
      ("table", Json.String table);
      ("where", Json.List (List.map condition_to_json where)) ]

let update_op ~table (where : Db.condition list) (row : (string * Datum.t) list)
    : Json.t =
  Json.Obj
    [ ("op", Json.String "update");
      ("table", Json.String table);
      ("where", Json.List (List.map condition_to_json where));
      ("row", Json.Obj (List.map (fun (c, d) -> (c, Datum.to_json d)) row)) ]

let select_op ?columns ~table (where : Db.condition list) : Json.t =
  let fields =
    [ ("op", Json.String "select");
      ("table", Json.String table);
      ("where", Json.List (List.map condition_to_json where)) ]
  in
  let fields =
    match columns with
    | Some cs ->
      fields @ [ ("columns", Json.List (List.map (fun c -> Json.String c) cs)) ]
    | None -> fields
  in
  Json.Obj fields

let monitor_request ~id ~db ~mon_id (tables : (string * string list option) list)
    =
  let specs =
    List.map
      (fun (t, cols) ->
        let spec =
          match cols with
          | None -> Json.Obj []
          | Some cs ->
            Json.Obj
              [ ("columns", Json.List (List.map (fun c -> Json.String c) cs)) ]
        in
        (t, spec))
      tables
  in
  request ~id ~meth:"monitor"
    ~params:(Json.List [ Json.String db; Json.String mon_id; Json.Obj specs ])
