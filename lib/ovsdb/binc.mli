(** Compact binary encoding primitives and database-value codecs — the
    "binary codec" a socket peer can negotiate instead of JSON (see
    {!Rpc} for the JSON forms and [lib/transport] for negotiation).

    Writers append to a {!Buffer.t}; readers consume a string with
    strict bounds checking.  Reader functions raise the local {!Error}
    exception on malformed input; {!decode} is the total entry point
    that callers should use — it returns [Error] on truncated, corrupt
    or trailing bytes and never raises. *)

exception Error of string
(** Raised by [r_*] readers on malformed input; caught by {!decode}. *)

(** {1 Writer} *)

type writer = Buffer.t

val writer : unit -> writer
val contents : writer -> string
val w_u8 : writer -> int -> unit
val w_varint : writer -> int -> unit
(** Unsigned LEB128; raises [Invalid_argument] on negative input. *)

val w_int64 : writer -> int64 -> unit
(** 8 bytes, big-endian. *)

val w_float : writer -> float -> unit
(** IEEE-754 bits as int64. *)

val w_bool : writer -> bool -> unit

val w_string : writer -> string -> unit
(** Varint length + bytes. *)

val w_list : (writer -> 'a -> unit) -> writer -> 'a list -> unit
val w_option : ('a -> unit) -> writer -> 'a option -> unit
val to_string : (writer -> 'a -> unit) -> 'a -> string
(** [to_string w v] runs [w] on a fresh writer and returns the bytes. *)

(** {1 Reader} *)

type reader

val reader : string -> reader
val remaining : reader -> int
val r_u8 : reader -> int
val r_varint : reader -> int
val r_int64 : reader -> int64
val r_float : reader -> float
val r_bool : reader -> bool
val r_string : reader -> string
val r_list : (reader -> 'a) -> reader -> 'a list
(** Declared element counts are validated against the remaining input
    (each element costs at least one byte), so corrupt counts fail
    instead of allocating unboundedly. *)

val r_option : (reader -> 'a) -> reader -> 'a option

val decode : (reader -> 'a) -> string -> ('a, string) result
(** Run a reader over the whole input: [Error] on any {!Error} raised
    by the reader or on trailing bytes.  Never raises. *)

(** {1 Database values} *)

val w_atom : writer -> Atom.t -> unit
val r_atom : reader -> Atom.t
val w_datum : writer -> Datum.t -> unit

val r_datum : reader -> Datum.t
(** Decoded sets and maps are re-canonicalised through the {!Datum}
    constructors, so the sortedness invariants hold even for forged
    input. *)

val r_uuid : reader -> Uuid.t
val w_row : writer -> Db.row -> unit
val r_row : reader -> Db.row
val w_row_update : writer -> Db.row_update -> unit
val r_row_update : reader -> Db.row_update
val w_table_updates : writer -> Db.table_updates -> unit
val r_table_updates : reader -> Db.table_updates
