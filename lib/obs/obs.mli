(** Cross-plane observability: named counters, gauges, histograms and
    spans collected into a process-global registry.

    Every plane of the stack (management, control, data) registers its
    metrics here by name; the registry renders as a human-readable
    table ({!render_table}) or one-line JSON ({!render_json}).  Metric
    names are a public contract — see README "Observability".

    The subsystem is dependency-free (stdlib + unix for the clock) and
    domain-safe: counters and gauges are atomics (concurrent
    increments never lose counts), histogram recording and percentile
    queries are serialized per histogram, and registry lookups are
    serialized globally — so metrics may be recorded from pool worker
    domains (see [Pool]).  A global kill switch {!set_enabled} reduces
    the cost of every instrumentation point to a single (atomic) load
    and branch: disabled counters do not count, disabled spans do not
    read the clock. *)

val set_enabled : bool -> unit
(** Globally enable/disable metric collection (default: enabled).
    While disabled every instrumentation point is a single branch. *)

val enabled : unit -> bool

val now : unit -> float
(** Wall-clock seconds (the clock spans use). *)

(** Monotonically increasing integer metrics (events, rows, bytes). *)
module Counter : sig
  type t

  val create : string -> t
  (** Find or create the counter registered under this name.
      @raise Invalid_argument if the name is registered as a different
      metric kind. *)

  val incr : t -> unit
  val add : t -> int -> unit
  val value : t -> int
  val name : t -> string
end

(** Last-value metrics (sizes, levels). *)
module Gauge : sig
  type t

  val create : string -> t
  val set : t -> float -> unit
  val value : t -> float
  val name : t -> string
end

(** Sample distributions with nearest-rank percentiles.

    A histogram keeps exact [count]/[sum]/[min]/[max] over all
    observations and retains the most recent samples (up to an internal
    cap of 16384) for percentile queries. *)
module Histogram : sig
  type t

  val create : ?unit_:string -> string -> t
  (** Find or create; [unit_] is a display hint (e.g. ["us"]). *)

  val observe : t -> float -> unit
  val count : t -> int
  val sum : t -> float
  val mean : t -> float
  val min_value : t -> float
  (** Smallest observation ([0.] when empty). *)

  val max_value : t -> float

  val percentile : t -> float -> float
  (** [percentile h p] for [p] in [0, 1]: the nearest-rank percentile
      of the retained samples ([0.] when empty). *)

  val percentile_of_sorted : float array -> float -> float
  (** The shared nearest-rank implementation over an ascending-sorted
      array: element at rank [ceil (p * n)], 1-based, clamped to
      [1, n] — so [p = 0.5] of [[|1.; 2.|]] is [1.], not [2.].
      Returns [0.] for the empty array. *)

  val time : t -> (unit -> 'a) -> 'a
  (** Run the thunk and observe its duration in microseconds.  When
      collection is disabled this is a single branch plus the call. *)
end

val span : string -> (unit -> 'a) -> 'a
(** [span name f] times [f] and records the duration in microseconds
    into the histogram registered under [name] (created on first use).
    The duration is recorded even if [f] raises. *)

(** {1 Registry} *)

val reset : unit -> unit
(** Zero every registered metric in place (handles stay valid). *)

val counter_value : string -> int
(** Value of the named counter ([0] if absent). *)

val gauge_value : string -> float

val find_histogram : string -> Histogram.t option

val metric_names : unit -> string list
(** All registered metric names, sorted. *)

val render_table : unit -> string
(** Human-readable table of every registered metric, sorted by name.
    Metrics that never fired render with zero values. *)

val render_json : unit -> string
(** The whole registry as one line of JSON: counters/gauges as
    numbers, histograms as [{"count":..,"mean":..,"p50":..,"p90":..,
    "p99":..,"max":..}] objects. *)
