(* Cross-plane observability: named counters, gauges, histograms and
   spans in a process-global registry.

   Design constraints (see ISSUE 1 / DESIGN "Observability"):
   - dependency-free: stdlib plus unix for the wall clock;
   - one global kill switch whose disabled cost is a single branch at
     every instrumentation point (verified by the bench smoke suite);
   - bounded memory: histograms keep exact count/sum/min/max but retain
     at most [hist_cap] recent samples for percentile queries, so
     million-iteration micro-benchmarks cannot grow the registry
     without bound;
   - domain-safe (since PR 4): counters and gauges are atomics,
     histogram recording and percentile queries take a per-histogram
     mutex, and the registry table is guarded by a global mutex.  The
     disabled cost is still a single (atomic) load and branch per
     instrumentation point. *)

let on = Atomic.make true
let set_enabled b = Atomic.set on b
let enabled () = Atomic.get on
let now () = Unix.gettimeofday ()

(* ------------------------------------------------------------------ *)
(* Metric payloads                                                     *)
(* ------------------------------------------------------------------ *)

type counter = { cname : string; count : int Atomic.t }
type gauge = { gname : string; value : float Atomic.t }

let hist_cap = 16384

type hist = {
  hname : string;
  hunit : string;
  hmutex : Mutex.t;          (* guards every mutable field below *)
  mutable buf : float array; (* retained samples, grows up to hist_cap *)
  mutable len : int;         (* valid entries in [buf] *)
  mutable pos : int;         (* overwrite cursor once [len] = cap *)
  mutable hcount : int;      (* exact totals over ALL observations *)
  mutable hsum : float;
  mutable hmin : float;
  mutable hmax : float;
}

type metric = MCounter of counter | MGauge of gauge | MHist of hist

let registry : (string, metric) Hashtbl.t = Hashtbl.create 64
let registry_mutex = Mutex.create ()

let locked m f =
  Mutex.lock m;
  Fun.protect ~finally:(fun () -> Mutex.unlock m) f

let kind = function
  | MCounter _ -> "counter"
  | MGauge _ -> "gauge"
  | MHist _ -> "histogram"

let register name wanted build extract =
  locked registry_mutex (fun () ->
      match Hashtbl.find_opt registry name with
      | Some m -> (
        match extract m with
        | Some payload -> payload
        | None ->
          invalid_arg
            (Printf.sprintf "Obs: %s is registered as a %s, not a %s" name
               (kind m) wanted))
      | None ->
        let payload, m = build () in
        Hashtbl.add registry name m;
        payload)

(* ------------------------------------------------------------------ *)
(* Counters and gauges                                                 *)
(* ------------------------------------------------------------------ *)

module Counter = struct
  type t = counter

  let create name =
    register name "counter"
      (fun () ->
        let c = { cname = name; count = Atomic.make 0 } in
        (c, MCounter c))
      (function MCounter c -> Some c | _ -> None)

  let add c n = if Atomic.get on then ignore (Atomic.fetch_and_add c.count n)
  let incr c = if Atomic.get on then ignore (Atomic.fetch_and_add c.count 1)
  let value c = Atomic.get c.count
  let name c = c.cname
end

module Gauge = struct
  type t = gauge

  let create name =
    register name "gauge"
      (fun () ->
        let g = { gname = name; value = Atomic.make 0.0 } in
        (g, MGauge g))
      (function MGauge g -> Some g | _ -> None)

  let set g v = if Atomic.get on then Atomic.set g.value v
  let value g = Atomic.get g.value
  let name g = g.gname
end

(* ------------------------------------------------------------------ *)
(* Histograms                                                          *)
(* ------------------------------------------------------------------ *)

module Histogram = struct
  type t = hist

  let create ?(unit_ = "") name =
    register name "histogram"
      (fun () ->
        let h =
          { hname = name; hunit = unit_; hmutex = Mutex.create ();
            buf = Array.make 64 0.0; len = 0;
            pos = 0; hcount = 0; hsum = 0.0; hmin = infinity;
            hmax = neg_infinity }
        in
        (h, MHist h))
      (function MHist h -> Some h | _ -> None)

  let observe_locked h v =
      h.hcount <- h.hcount + 1;
      h.hsum <- h.hsum +. v;
      if v < h.hmin then h.hmin <- v;
      if v > h.hmax then h.hmax <- v;
      if h.len < hist_cap then begin
        if h.len = Array.length h.buf then begin
          let bigger =
            Array.make (min hist_cap (2 * Array.length h.buf)) 0.0
          in
          Array.blit h.buf 0 bigger 0 h.len;
          h.buf <- bigger
        end;
        h.buf.(h.len) <- v;
        h.len <- h.len + 1
      end
      else begin
        (* at capacity: keep the most recent samples, ring-buffer style *)
        h.buf.(h.pos) <- v;
        h.pos <- (h.pos + 1) mod hist_cap
      end

  let observe h v =
    if Atomic.get on then locked h.hmutex (fun () -> observe_locked h v)

  let count h = h.hcount
  let sum h = h.hsum
  let mean h = if h.hcount = 0 then 0.0 else h.hsum /. float_of_int h.hcount
  let min_value h = if h.hcount = 0 then 0.0 else h.hmin
  let max_value h = if h.hcount = 0 then 0.0 else h.hmax

  (* Nearest-rank percentile over an ascending-sorted array: the value
     at 1-based rank ceil(p * n), clamped to [1, n].  This is the one
     shared implementation the whole repo uses; the previous bench-local
     floor(p * n) variant was biased one rank high for small samples
     (p50 of [1.; 2.] came out as 2.). *)
  let percentile_of_sorted (sorted : float array) (p : float) : float =
    let n = Array.length sorted in
    if n = 0 then 0.0
    else
      let rank = int_of_float (Float.ceil (p *. float_of_int n)) in
      let rank = max 1 (min n rank) in
      sorted.(rank - 1)

  let percentile h p =
    let a =
      locked h.hmutex (fun () ->
          if h.len = 0 then [||] else Array.sub h.buf 0 h.len)
    in
    if Array.length a = 0 then 0.0
    else begin
      Array.sort Float.compare a;
      percentile_of_sorted a p
    end

  let time h f =
    if not (Atomic.get on) then f ()
    else begin
      let t0 = now () in
      Fun.protect ~finally:(fun () -> observe h ((now () -. t0) *. 1e6)) f
    end
end

let span name f =
  if not (Atomic.get on) then f ()
  else Histogram.time (Histogram.create ~unit_:"us" name) f

(* ------------------------------------------------------------------ *)
(* Registry                                                            *)
(* ------------------------------------------------------------------ *)

let reset () =
  locked registry_mutex (fun () ->
      Hashtbl.iter
        (fun _ m ->
          match m with
          | MCounter c -> Atomic.set c.count 0
          | MGauge g -> Atomic.set g.value 0.0
          | MHist h ->
            locked h.hmutex (fun () ->
                h.len <- 0;
                h.pos <- 0;
                h.hcount <- 0;
                h.hsum <- 0.0;
                h.hmin <- infinity;
                h.hmax <- neg_infinity))
        registry)

let find_metric name =
  locked registry_mutex (fun () -> Hashtbl.find_opt registry name)

let counter_value name =
  match find_metric name with
  | Some (MCounter c) -> Atomic.get c.count
  | _ -> 0

let gauge_value name =
  match find_metric name with
  | Some (MGauge g) -> Atomic.get g.value
  | _ -> 0.0

let find_histogram name =
  match find_metric name with
  | Some (MHist h) -> Some h
  | _ -> None

let sorted_metrics () =
  locked registry_mutex (fun () ->
      Hashtbl.fold (fun name m acc -> (name, m) :: acc) registry [])
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let metric_names () = List.map fst (sorted_metrics ())

let render_table () =
  let b = Buffer.create 1024 in
  Buffer.add_string b
    (Printf.sprintf "%-42s %-10s %10s %12s %12s %12s %12s\n" "metric" "type"
       "count" "mean" "p50" "p99" "max");
  Buffer.add_string b (String.make 114 '-');
  Buffer.add_char b '\n';
  List.iter
    (fun (name, m) ->
      match m with
      | MCounter c ->
        Buffer.add_string b
          (Printf.sprintf "%-42s %-10s %10d\n" name "counter"
             (Atomic.get c.count))
      | MGauge g ->
        Buffer.add_string b
          (Printf.sprintf "%-42s %-10s %10s %12.1f\n" name "gauge" ""
             (Atomic.get g.value))
      | MHist h ->
        let unit_ = if h.hunit = "" then "hist" else "hist(" ^ h.hunit ^ ")" in
        Buffer.add_string b
          (Printf.sprintf "%-42s %-10s %10d %12.1f %12.1f %12.1f %12.1f\n"
             name unit_ h.hcount (Histogram.mean h)
             (Histogram.percentile h 0.50) (Histogram.percentile h 0.99)
             (Histogram.max_value h)))
    (sorted_metrics ());
  Buffer.contents b

(* A float rendering that is valid JSON (no "inf"/"nan" leakage). *)
let json_float v =
  if Float.is_finite v then Printf.sprintf "%.3f" v else "0.0"

let render_json () =
  let b = Buffer.create 1024 in
  Buffer.add_char b '{';
  List.iteri
    (fun i (name, m) ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b (Printf.sprintf "%S:" name);
      match m with
      | MCounter c -> Buffer.add_string b (string_of_int (Atomic.get c.count))
      | MGauge g -> Buffer.add_string b (json_float (Atomic.get g.value))
      | MHist h ->
        Buffer.add_string b
          (Printf.sprintf
             "{\"count\":%d,\"mean\":%s,\"p50\":%s,\"p90\":%s,\"p99\":%s,\"max\":%s}"
             h.hcount
             (json_float (Histogram.mean h))
             (json_float (Histogram.percentile h 0.50))
             (json_float (Histogram.percentile h 0.90))
             (json_float (Histogram.percentile h 0.99))
             (json_float (Histogram.max_value h))))
    (sorted_metrics ());
  Buffer.add_char b '}';
  Buffer.contents b
