(** A work-stealing pool of OCaml 5 domains for data-parallel batches.

    The pool owns [size] worker domains that sleep between batches.
    {!run} submits a flat batch of tasks; the workers {e and the
    submitting domain} all pull tasks from a shared claim cursor, so a
    fast worker that exhausts its share steals the remaining tasks of a
    slow one (dynamic load balancing without per-domain queues — the
    batches this repo runs are flat arrays, not task DAGs).

    A pool of size [0] has no workers: {!run} executes the batch
    inline, in index order, on the calling domain.  Every user of the
    pool must therefore be correct {e sequentially}; parallelism is
    only an execution strategy, never a semantics change.

    Determinism contract: {!run} always returns results positionally
    (result [i] belongs to task [i]) and, when several tasks raise, the
    exception of the {e lowest-indexed} failing task is the one
    re-raised — identical to what sequential execution in index order
    would report first. *)

type t

val create : ?size:int -> unit -> t
(** [create ~size ()] spawns [size] worker domains.  The default size
    is [Domain.recommended_domain_count () - 1] (the calling domain is
    the remaining evaluator), overridable with the [NERPA_POOL_SIZE]
    environment variable; it is clamped to [[0, 126]].  A pool of size
    [0] runs every batch inline. *)

val size : t -> int
(** Number of worker domains ([0] = sequential fallback). *)

val run : t -> (unit -> 'a) array -> 'a array
(** Execute a batch and return the results positionally.  Blocks until
    every task has finished.  If any task raised, the lowest-indexed
    task's exception is re-raised after the whole batch has drained
    (no task is left running).

    Calls from a worker domain of the same pool (nested batches) and
    batches of fewer than two tasks run inline on the caller.
    Concurrent {!run} calls from different domains are serialized. *)

val shutdown : t -> unit
(** Terminate and join the worker domains.  Idempotent; {!run} on a
    shut-down pool executes inline. *)

val default : unit -> t
(** The process-wide shared pool, created on first use with the
    default size (see {!create}).  Never shut down. *)
