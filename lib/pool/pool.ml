(* Work-stealing domain pool.

   A batch is a flat array of thunks plus two atomics: a claim cursor
   ([next]) and a remaining-tasks count ([left]).  Workers and the
   submitting domain all claim tasks with [Atomic.fetch_and_add next 1]
   — a domain that finishes its task immediately claims the next
   unstarted one, which is what steals work from slower domains.
   [left] reaching 0 is the completion signal for the submitter.

   Workers park on a condition variable between batches; a batch is
   published by bumping a generation counter under the mutex and
   broadcasting.  Shutdown publishes a generation with no batch. *)

type batch = {
  tasks : (unit -> unit) array;
  next : int Atomic.t;
  left : int Atomic.t;
}

type t = {
  size : int;
  mutex : Mutex.t;
  cond : Condition.t;                (* workers: "a new batch is up" *)
  done_cond : Condition.t;           (* submitter: "the batch drained" *)
  mutable generation : int;          (* bumped per published batch *)
  mutable current : batch option;    (* valid for [generation] *)
  mutable stopping : bool;
  mutable domains : unit Domain.t list;
  mutable worker_ids : Domain.id list;
  run_lock : Mutex.t;                (* serializes concurrent [run] *)
  (* Domain currently inside [run], so a task that submits a nested
     batch from the submitting domain (it claims tasks too) runs it
     inline instead of deadlocking on [run_lock].  Only ever written
     by the domain holding [run_lock]; other domains may read a stale
     value, which can never equal their own id. *)
  mutable submitter : Domain.id option;
}

let max_size = 126

let default_size () =
  let of_env =
    match Sys.getenv_opt "NERPA_POOL_SIZE" with
    | Some s -> int_of_string_opt (String.trim s)
    | None -> None
  in
  let n =
    match of_env with
    | Some n -> n
    | None -> Domain.recommended_domain_count () - 1
  in
  max 0 (min max_size n)

let drain_batch t b =
  (* Claim and run tasks until the cursor passes the end.  Each task
     decrements [left]; whoever drops it to 0 wakes the submitter. *)
  let n = Array.length b.tasks in
  let rec loop () =
    let i = Atomic.fetch_and_add b.next 1 in
    if i < n then begin
      (b.tasks.(i) ());
      if Atomic.fetch_and_add b.left (-1) = 1 then begin
        Mutex.lock t.mutex;
        Condition.broadcast t.done_cond;
        Mutex.unlock t.mutex
      end;
      loop ()
    end
  in
  loop ()

let worker t =
  let seen = ref 0 in
  let rec loop () =
    Mutex.lock t.mutex;
    while t.generation = !seen && not t.stopping do
      Condition.wait t.cond t.mutex
    done;
    let gen = t.generation and batch = t.current and stop = t.stopping in
    Mutex.unlock t.mutex;
    if gen <> !seen then begin
      seen := gen;
      (match batch with Some b -> drain_batch t b | None -> ());
      loop ()
    end
    else if not stop then loop ()
  in
  loop ()

let create ?size () =
  let size =
    match size with
    | Some n -> max 0 (min max_size n)
    | None -> default_size ()
  in
  let t =
    {
      size;
      mutex = Mutex.create ();
      cond = Condition.create ();
      done_cond = Condition.create ();
      generation = 0;
      current = None;
      stopping = false;
      domains = [];
      worker_ids = [];
      run_lock = Mutex.create ();
      submitter = None;
    }
  in
  let domains = List.init size (fun _ -> Domain.spawn (fun () -> worker t)) in
  t.domains <- domains;
  t.worker_ids <- List.map Domain.get_id domains;
  t

let size t = t.size

let in_worker t = List.mem (Domain.self ()) t.worker_ids

exception Task_failed of int * exn * Printexc.raw_backtrace

let run_inline tasks =
  Array.map (fun f -> f ()) tasks

let run (type a) t (tasks : (unit -> a) array) : a array =
  let n = Array.length tasks in
  if
    t.size = 0 || t.stopping || n < 2 || in_worker t
    || t.submitter = Some (Domain.self ())
  then run_inline tasks
  else begin
    Mutex.lock t.run_lock;
    t.submitter <- Some (Domain.self ());
    Fun.protect
      ~finally:(fun () ->
        t.submitter <- None;
        Mutex.unlock t.run_lock)
      (fun () ->
        let results : a option array = Array.make n None in
        let failure = Atomic.make None in
        let wrapped =
          Array.mapi
            (fun i f () ->
              match f () with
              | v -> results.(i) <- Some v
              | exception e ->
                  let bt = Printexc.get_raw_backtrace () in
                  (* Keep the lowest-indexed failure: sequential
                     execution in index order would report it first. *)
                  let rec record () =
                    match Atomic.get failure with
                    | Some (j, _, _) when j <= i -> ()
                    | prev ->
                        if not (Atomic.compare_and_set failure prev
                                  (Some (i, e, bt)))
                        then record ()
                  in
                  record ())
            tasks
        in
        let b =
          { tasks = wrapped; next = Atomic.make 0; left = Atomic.make n }
        in
        Mutex.lock t.mutex;
        t.current <- Some b;
        t.generation <- t.generation + 1;
        Condition.broadcast t.cond;
        Mutex.unlock t.mutex;
        (* The submitter claims tasks too; stragglers still running on
           worker domains are awaited with a short spin (the common
           case resolves in microseconds) and then a condvar sleep, so
           a descheduled worker never costs a busy scheduling quantum. *)
        drain_batch t b;
        let spins = ref 0 in
        while Atomic.get b.left > 0 && !spins < 4096 do
          incr spins;
          Domain.cpu_relax ()
        done;
        if Atomic.get b.left > 0 then begin
          Mutex.lock t.mutex;
          while Atomic.get b.left > 0 do
            Condition.wait t.done_cond t.mutex
          done;
          Mutex.unlock t.mutex
        end;
        (match Atomic.get failure with
        | Some (i, e, bt) ->
            Printexc.raise_with_backtrace (Task_failed (i, e, bt)) bt
        | None -> ());
        Array.map
          (function Some v -> v | None -> assert false)
          results)
  end

let run t tasks =
  try run t tasks
  with Task_failed (_, e, bt) -> Printexc.raise_with_backtrace e bt

let shutdown t =
  if not t.stopping then begin
    Mutex.lock t.mutex;
    t.stopping <- true;
    Condition.broadcast t.cond;
    Mutex.unlock t.mutex;
    List.iter Domain.join t.domains;
    t.domains <- [];
    t.worker_ids <- []
  end

let default_pool = ref None
let default_mutex = Mutex.create ()

let default () =
  match !default_pool with
  | Some p -> p
  | None ->
      Mutex.lock default_mutex;
      Fun.protect
        ~finally:(fun () -> Mutex.unlock default_mutex)
        (fun () ->
          match !default_pool with
          | Some p -> p
          | None ->
              let p = create () in
              default_pool := Some p;
              p)
