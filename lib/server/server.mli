(** The Nerpa daemon: hosts an OVSDB database and/or a fleet of P4
    switches behind Unix-domain listening sockets speaking the
    {!Transport.Frame} protocol — the server side of
    {!Transport.socket} and {!Nerpa.Endpoint.sockets}.

    Socket layout under [dir] matches {!Nerpa.Endpoint}:
    [ovsdb.sock] for the management plane (when a database is hosted),
    [xrel.sock] for the exchange store (when one is hosted),
    [p4-<name>.sock] per hosted switch.  With [?tcp:(host, base)] the
    daemon instead binds TCP ports in {!Nerpa.Shard_map}'s layout:
    [base] management, [base+1] exchange store, [base+2+k] the k-th
    hosted switch.  Each listener runs one accept
    loop; each accepted connection gets a handler thread.  All
    dispatch into the hosted objects is serialized by a server-wide
    lock ({!with_lock}), so concurrent clients see the same atomic
    request semantics as an in-process deployment.

    Robustness: a malformed, truncated or oversize frame closes the
    {e offending connection only} — listeners and other connections
    are unaffected.  Each management connection owns a private
    monitor, cancelled when the connection dies; a reconnecting
    controller resyncs from a fresh snapshot.

    Metrics: [server.accepts], [server.requests],
    [server.conn_errors]. *)

type t

val create :
  ?db:Ovsdb.Db.t ->
  ?xdb:Ovsdb.Db.t ->
  ?auth:string ->
  ?tcp:string * int ->
  ?switches:(string * P4.Switch.t) list ->
  dir:string ->
  unit ->
  t
(** A server hosting [db] (if given), the exchange store [xdb] (if
    given; an ordinary OVSDB served on its own socket — see
    {!Nerpa.Xrel}) and [switches] (attached to P4Runtime on creation)
    under socket directory [dir] — or, with [tcp], on TCP ports from
    the given base.  When [auth] is set every accepted connection must
    pass the {!Transport.server_handshake} shared-secret challenge
    before its first request; a failed handshake closes that
    connection only (counted in [server.conn_errors]).  Nothing
    listens until {!start}. *)

val start : t -> unit
(** Create [dir] if needed, bind and listen on every socket, and spawn
    the accept threads.  Stale socket files are replaced.  SIGPIPE is
    ignored process-wide (a write to a dead client must fail with
    [EPIPE], not kill the daemon). *)

val stop : t -> unit
(** Close listeners and open connections, join every handler thread,
    and remove the socket files.  The hosted database and switches
    survive (a later {!start} re-exposes them).  Idempotent: a second
    [stop] finds no tracked resources and does nothing. *)

val live_conns : t -> int
(** Currently-open accepted connections (handler threads untrack their
    connection as it closes). *)

val live_threads : t -> int
(** Currently-live server threads: accept loops plus connection
    handlers.  Handler threads remove themselves on exit, so this does
    not grow with the total number of connections ever served. *)

val with_lock : t -> (unit -> 'a) -> 'a
(** Run [f] under the server's dispatch lock — how a hosting process
    safely mutates the database or injects packets into hosted switches
    while clients are connected. *)

val socket_dir : t -> string
