(* The Nerpa daemon: hosts an OVSDB database and/or a fleet of P4
   switches behind Unix-domain listening sockets, speaking the
   {!Transport.Frame} protocol toward controller processes.

   One listening socket per hosted entity — the management plane at
   [Endpoint.mgmt_socket_path], one P4Runtime socket per switch at
   [Endpoint.p4_socket_path] — each with its own accept loop.  Every
   accepted connection gets a handler thread; system threads (not
   [lib/pool] domains) because each handler spends its life blocked in
   [read]/[write], which is exactly what threads are for and what the
   pool's batch-oriented work-stealing domains are not.

   Dispatch into the database and the switches is serialized by one
   server-wide lock: the hosted objects are the same single-threaded
   structures the in-process deployment uses, and the lock gives every
   request the atomicity the direct call had.  [with_lock] exposes the
   same lock to the hosting process (e.g. a workload generator applying
   transactions while controllers are connected).

   A malformed frame or payload closes the offending connection only;
   the listeners and every other connection keep running.  Each
   management connection owns a private monitor (registered on accept,
   cancelled on close), so one client's polls never consume another's
   batches — and a reconnecting controller finds a fresh monitor whose
   initial batch, or a [Resync] snapshot, rebuilds its state. *)

let m_accepts = Obs.Counter.create "server.accepts"
let m_requests = Obs.Counter.create "server.requests"
let m_conn_errors = Obs.Counter.create "server.conn_errors"

type t = {
  dir : string;
  db : Ovsdb.Db.t option;
  xdb : Ovsdb.Db.t option;  (* this shard's exchange store *)
  auth : string option;  (* shared secret demanded of every connection *)
  tcp : (string * int) option;  (* bind TCP (host, base port) instead of dir *)
  switches : (string * P4runtime.server) list;
  lock : Mutex.t;
  mutable running : bool;
  mutable listeners : Unix.file_descr list;
  mutable conns : Unix.file_descr list;
  mutable threads : Thread.t list;
  state_lock : Mutex.t;  (* guards the mutable lists + [running] *)
}

let create ?db ?xdb ?auth ?tcp ?(switches = []) ~dir () : t =
  {
    dir;
    db;
    xdb;
    auth;
    tcp;
    switches = List.map (fun (n, sw) -> (n, P4runtime.attach sw)) switches;
    lock = Mutex.create ();
    running = false;
    listeners = [];
    conns = [];
    threads = [];
    state_lock = Mutex.create ();
  }

let with_lock (t : t) (f : unit -> 'a) : 'a = Mutex.protect t.lock f

let socket_dir (t : t) = t.dir

let track_conn t fd =
  Mutex.protect t.state_lock (fun () -> t.conns <- fd :: t.conns)

let untrack_conn t fd =
  Mutex.protect t.state_lock (fun () ->
      t.conns <- List.filter (fun c -> c != fd) t.conns)

(* Handler threads remove themselves from [t.threads] as they exit, so
   the list tracks only live threads instead of growing by one entry
   per connection for the server's lifetime. *)
let untrack_thread t th =
  let id = Thread.id th in
  Mutex.protect t.state_lock (fun () ->
      t.threads <- List.filter (fun th' -> Thread.id th' <> id) t.threads)

let close_quiet fd = try Unix.close fd with Unix.Unix_error _ -> ()

(* Live-resource counts, for tests and operational introspection. *)
let live_conns t = Mutex.protect t.state_lock (fun () -> List.length t.conns)

let live_threads t =
  Mutex.protect t.state_lock (fun () -> List.length t.threads)

(* ---------------- per-connection handlers ---------------- *)

(* Generic request/response loop over one connection: read a frame,
   check the plane tag, decode with the frame's codec, dispatch under
   the server lock, write the framed response with the request's id
   and codec.  Answering in the request's codec is the whole server
   side of codec negotiation — it is stateless per frame, so one
   connection may freely mix JSON and binary requests.  Any failure —
   including a corrupt or oversize frame — ends this connection and
   nothing else. *)
let serve_conn (t : t) ~(plane : Transport.Frame.plane)
    ~(decode : Transport.codec -> string -> ('req, string) result)
    ~(encode : Transport.codec -> 'resp -> string)
    ~(handle : 'req -> 'resp) (fd : Unix.file_descr) : unit =
  let rd = Transport.Frame.reader fd in
  let rec loop () =
    match Transport.Frame.read_frame_buf rd with
    | Error _ -> Obs.Counter.incr m_conn_errors
    | Ok (got_plane, _, _, _) when got_plane <> plane ->
      Obs.Counter.incr m_conn_errors
    | Ok (_, codec, req_id, payload) -> (
      match decode codec payload with
      | Error _ -> Obs.Counter.incr m_conn_errors
      | Ok req ->
        Obs.Counter.incr m_requests;
        let resp = with_lock t (fun () -> handle req) in
        (match
           Transport.Frame.write_frame fd ~plane ~codec ~req_id
             (encode codec resp)
         with
        | Ok () -> loop ()
        | Error _ -> Obs.Counter.incr m_conn_errors))
  in
  loop ()

let serve_mgmt (t : t) (db : Ovsdb.Db.t) (fd : Unix.file_descr) : unit =
  let mon =
    with_lock t (fun () ->
        Ovsdb.Db.add_monitor db
          (List.map
             (fun (tbl : Ovsdb.Schema.table) -> (tbl.tname, None))
             db.Ovsdb.Db.schema.tables))
  in
  Fun.protect
    ~finally:(fun () ->
      with_lock t (fun () -> Ovsdb.Db.cancel_monitor db mon))
    (fun () ->
      serve_conn t ~plane:Transport.Frame.Mgmt
        ~decode:Nerpa.Links.decode_mgmt_request_c
        ~encode:Nerpa.Links.encode_mgmt_response_c
        ~handle:(Nerpa.Links.mgmt_handler db mon) fd)

let serve_p4 (t : t) (srv : P4runtime.server) (fd : Unix.file_descr) : unit =
  serve_conn t ~plane:Transport.Frame.P4
    ~decode:Nerpa.Links.decode_p4_request_c
    ~encode:Nerpa.Links.encode_p4_response_c
    ~handle:(P4runtime.Wire.dispatch srv) fd

(* ---------------- accept loops ---------------- *)

let accept_loop (t : t) (lfd : Unix.file_descr)
    (handler : Unix.file_descr -> unit) : unit =
  let rec loop () =
    match Unix.accept lfd with
    | fd, _ when not (Mutex.protect t.state_lock (fun () -> t.running)) ->
      (* raced with [stop]: nothing tracks this connection any more *)
      close_quiet fd
    | fd, _ ->
      Obs.Counter.incr m_accepts;
      track_conn t fd;
      let th =
        Thread.create
          (fun () ->
            (try handler fd with _ -> Obs.Counter.incr m_conn_errors);
            untrack_conn t fd;
            close_quiet fd;
            untrack_thread t (Thread.self ()))
          ()
      in
      Mutex.protect t.state_lock (fun () -> t.threads <- th :: t.threads);
      loop ()
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> loop ()
    | exception Unix.Unix_error (_, _, _) ->
      (* listener closed by [stop] (or fatally broken): end the loop *)
      ()
  in
  loop ()

let listen_on (path : string) : Unix.file_descr =
  (try Unix.unlink path with Unix.Unix_error _ -> ());
  let lfd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.bind lfd (Unix.ADDR_UNIX path);
  Unix.listen lfd 16;
  lfd

let listen_on_tcp (host : string) (port : int) : Unix.file_descr =
  let addr =
    try Unix.inet_addr_of_string host
    with Failure _ -> (
      try (Unix.gethostbyname host).Unix.h_addr_list.(0)
      with Not_found -> failwith ("server: cannot resolve host " ^ host))
  in
  let lfd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.setsockopt lfd Unix.SO_REUSEADDR true;
  Unix.bind lfd (Unix.ADDR_INET (addr, port));
  Unix.listen lfd 16;
  lfd

let ignore_sigpipe =
  lazy
    (if Sys.os_type = "Unix" then
       Sys.set_signal Sys.sigpipe Sys.Signal_ignore)

(* When a shared secret is configured, every accepted connection must
   pass the handshake before its first request; a failure closes just
   that connection.  The handshake's raw frame reads consume exactly
   their own bytes, so the handler's buffered reader starts clean. *)
let guard (t : t) handler fd =
  match t.auth with
  | None -> handler fd
  | Some secret -> (
    match Transport.server_handshake ~secret fd with
    | Ok () -> handler fd
    | Error _ -> Obs.Counter.incr m_conn_errors)

let start (t : t) : unit =
  Lazy.force ignore_sigpipe;
  if t.tcp = None && not (Sys.file_exists t.dir) then Unix.mkdir t.dir 0o755;
  Mutex.protect t.state_lock (fun () -> t.running <- true);
  let spawn lfd handler =
    Mutex.protect t.state_lock (fun () ->
        t.listeners <- lfd :: t.listeners);
    let th = Thread.create (fun () -> accept_loop t lfd (guard t handler)) () in
    Mutex.protect t.state_lock (fun () -> t.threads <- th :: t.threads)
  in
  match t.tcp with
  | Some (host, base) ->
    (* port layout mirrors {!Nerpa.Shard_map}: [base] management,
       [base+1] exchange store, [base+2+k] the k-th hosted switch —
       callers must pass [switches] in the shard's fleet order *)
    (match t.db with
    | Some db -> spawn (listen_on_tcp host base) (serve_mgmt t db)
    | None -> ());
    (match t.xdb with
    | Some xdb -> spawn (listen_on_tcp host (base + 1)) (serve_mgmt t xdb)
    | None -> ());
    List.iteri
      (fun k (_, srv) -> spawn (listen_on_tcp host (base + 2 + k)) (serve_p4 t srv))
      t.switches
  | None ->
    (match t.db with
    | Some db ->
      spawn
        (listen_on (Nerpa.Endpoint.mgmt_socket_path ~dir:t.dir))
        (serve_mgmt t db)
    | None -> ());
    (match t.xdb with
    | Some xdb ->
      spawn
        (listen_on (Nerpa.Endpoint.xrel_socket_path ~dir:t.dir))
        (serve_mgmt t xdb)
    | None -> ());
    List.iter
      (fun (name, srv) ->
        spawn
          (listen_on (Nerpa.Endpoint.p4_socket_path ~dir:t.dir name))
          (serve_p4 t srv))
      t.switches

let stop (t : t) : unit =
  let listeners, conns, threads =
    Mutex.protect t.state_lock (fun () ->
        t.running <- false;
        let l = t.listeners and c = t.conns and th = t.threads in
        t.listeners <- [];
        (* Clear [conns] too: leaving the captured fds in place made a
           second [stop] shut down stale descriptors that the kernel
           may since have reused for something else entirely. *)
        t.conns <- [];
        t.threads <- [];
        (l, c, th))
  in
  (* [shutdown] (not just [close]) on the listeners: closing an fd does
     not wake a thread blocked in [accept], shutting the socket down
     does — the accept fails and the loop exits. *)
  List.iter
    (fun fd ->
      (try Unix.shutdown fd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ());
      close_quiet fd)
    listeners;
  (* Shut the open connections down so blocked reads return EOF and the
     handler threads exit; they close their own fds. *)
  List.iter
    (fun fd -> try Unix.shutdown fd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ())
    conns;
  List.iter Thread.join threads;
  if t.tcp = None then begin
    (match t.db with
    | Some _ ->
      (try Unix.unlink (Nerpa.Endpoint.mgmt_socket_path ~dir:t.dir)
       with Unix.Unix_error _ -> ())
    | None -> ());
    (match t.xdb with
    | Some _ ->
      (try Unix.unlink (Nerpa.Endpoint.xrel_socket_path ~dir:t.dir)
       with Unix.Unix_error _ -> ())
    | None -> ());
    List.iter
      (fun (name, _) ->
        try Unix.unlink (Nerpa.Endpoint.p4_socket_path ~dir:t.dir name)
        with Unix.Unix_error _ -> ())
      t.switches
  end
