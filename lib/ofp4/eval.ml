(* OpenFlow-pipeline evaluation over real packets, mirroring the
   v1model semantics of [P4.Switch.process_interp]: parse with the
   source program's parser, run the ingress table region, replicate
   (unicast via the forwarding registers, multicast via group tables,
   clones via immediate outputs), run the egress region once per copy,
   deparse valid headers in program order.  Divergences are documented
   in the interface. *)

type pstate = {
  fields : (string, int64) Hashtbl.t; (* "hdr.field" / "meta.x" / "reg.x" *)
  valid : (string, unit) Hashtbl.t;
  mutable payload : P4.Packet.t;
}

type t = {
  prog : P4.Program.t;
  ofp : Openflow.t;
  groups : (int64 * int64 list) list;
  widths : (string, int) Hashtbl.t;
  tables : Openflow.flow array array; (* per table id, priority-descending *)
  ing_limit : int;  (* ingress tables are [0, ing_limit) *)
  mutable tags : string list; (* ToController emissions, last process *)
}

let build_widths (prog : P4.Program.t) : (string, int) Hashtbl.t =
  let widths = Hashtbl.create 64 in
  List.iter
    (fun (h : P4.Program.header) ->
      List.iter
        (fun (f : P4.Program.field) ->
          Hashtbl.replace widths (h.hname ^ "." ^ f.fname) f.fwidth)
        h.fields)
    prog.headers;
  List.iter
    (fun (m, w) -> Hashtbl.replace widths ("meta." ^ m) w)
    P4.Program.standard_metadata;
  Hashtbl.replace widths Openflow.reg_egress 16;
  Hashtbl.replace widths Openflow.reg_has_dest 1;
  Hashtbl.replace widths Openflow.reg_mcast 16;
  Hashtbl.replace widths Openflow.reg_dropped 1;
  widths

let create ?(groups = []) (prog : P4.Program.t) (ofp : Openflow.t) : t =
  let n = max ofp.Openflow.n_tables 0 in
  let buckets = Array.make (n + 1) [] in
  (* ofp.flows is newest-first; restore insertion order per table *)
  List.iter
    (fun (f : Openflow.flow) ->
      if f.table_id >= 0 && f.table_id < n then
        buckets.(f.table_id) <- f :: buckets.(f.table_id))
    ofp.Openflow.flows;
  let tables =
    Array.init n (fun i ->
        let sorted =
          List.stable_sort
            (fun (a : Openflow.flow) (b : Openflow.flow) ->
              Int.compare b.priority a.priority)
            buckets.(i)
        in
        Array.of_list sorted)
  in
  let ing_limit =
    match ofp.Openflow.egress_start with Some e -> e | None -> n
  in
  { prog; ofp; groups; widths = build_widths prog; tables; ing_limit; tags = [] }

let of_switch (sw : P4.Switch.t) (ofp : Openflow.t) : t =
  create ~groups:(P4.Switch.mcast_groups_list sw) sw.P4.Switch.program ofp

let width t name = Option.value ~default:64 (Hashtbl.find_opt t.widths name)

let mask_w w v =
  if w >= 64 then v else Int64.logand v (Int64.sub (Int64.shift_left 1L w) 1L)

let read (st : pstate) name =
  match Openflow.header_of_valid name with
  | Some h -> if Hashtbl.mem st.valid h then 1L else 0L
  | None -> Option.value ~default:0L (Hashtbl.find_opt st.fields name)

let write t (st : pstate) name v =
  Hashtbl.replace st.fields name (mask_w (width t name) v)

let copy_pstate (st : pstate) : pstate =
  {
    fields = Hashtbl.copy st.fields;
    valid = Hashtbl.copy st.valid;
    payload = st.payload;
  }

(* ---------------- parsing / deparsing ---------------- *)

exception Eval_error of string

let error fmt = Format.kasprintf (fun s -> raise (Eval_error s)) fmt

let parse t (pkt : P4.Packet.t) : pstate option =
  let st =
    { fields = Hashtbl.create 32; valid = Hashtbl.create 8;
      payload = P4.Packet.of_bytes Bytes.empty }
  in
  let bit = ref 0 in
  let extract hname =
    match P4.Program.find_header t.prog hname with
    | None -> error "unknown header %s" hname
    | Some h ->
      if !bit + P4.Program.header_width h > 8 * P4.Packet.length pkt then false
      else begin
        List.iter
          (fun (f : P4.Program.field) ->
            let v = P4.Packet.get_bits pkt ~bit_offset:!bit ~width:f.fwidth in
            Hashtbl.replace st.fields (hname ^ "." ^ f.fname) v;
            bit := !bit + f.fwidth)
          h.fields;
        Hashtbl.replace st.valid hname ();
        true
      end
  in
  let ref_name (r : P4.Program.fref) =
    match r with
    | P4.Program.Field (h, f) -> h ^ "." ^ f
    | P4.Program.Meta m -> "meta." ^ m
  in
  let rec run state_name fuel =
    if fuel <= 0 then error "parser loop in program %s" t.prog.name
    else
      match P4.Program.find_state t.prog state_name with
      | None -> error "unknown parser state %s" state_name
      | Some s ->
        if not (List.for_all extract s.extracts) then false (* truncated *)
        else begin
          match s.transition with
          | P4.Program.Accept ->
            st.payload <- P4.Packet.drop_bytes pkt ((!bit + 7) / 8);
            true
          | P4.Program.Reject -> false
          | P4.Program.Select (r, cases) ->
            let v = read st (ref_name r) in
            let rec pick = function
              | [] -> false
              | (Some c, target) :: rest ->
                if Int64.equal c v then run target (fuel - 1) else pick rest
              | (None, target) :: _ -> run target (fuel - 1)
            in
            pick cases
        end
  in
  if run t.prog.parser.start 64 then Some st else None

let deparse t (st : pstate) : P4.Packet.t =
  let width =
    List.fold_left
      (fun acc (h : P4.Program.header) ->
        if Hashtbl.mem st.valid h.hname then acc + P4.Program.header_width h
        else acc)
      0 t.prog.headers
  in
  let out = P4.Packet.create ((width + 7) / 8) in
  let bit = ref 0 in
  List.iter
    (fun (h : P4.Program.header) ->
      if Hashtbl.mem st.valid h.hname then
        List.iter
          (fun (f : P4.Program.field) ->
            let v =
              Option.value ~default:0L
                (Hashtbl.find_opt st.fields (h.hname ^ "." ^ f.fname))
            in
            P4.Packet.set_bits out ~bit_offset:!bit ~width:f.fwidth v;
            bit := !bit + f.fwidth)
          h.fields)
    t.prog.headers;
  P4.Packet.concat out st.payload

(* ---------------- table-region execution ---------------- *)

let matches_flow (st : pstate) (f : Openflow.flow) : bool =
  List.for_all
    (fun (m : Openflow.field_match) ->
      let v = read st m.mfield in
      match m.mmask with
      | None -> Int64.equal v m.mvalue
      | Some mask ->
        Int64.equal (Int64.logand v mask) (Int64.logand m.mvalue mask))
    f.matches

(* Run tables [first, limit); immediate [Output]s (ingress clones) are
   collected and returned newest-first, matching the interpreter's
   clone-list orientation. *)
let run_region t (st : pstate) ~first ~limit : int64 list =
  let clones = ref [] in
  let rec run tid fuel =
    if fuel <= 0 then error "goto loop";
    if tid < limit then begin
      let table = if tid < Array.length t.tables then t.tables.(tid) else [||] in
      let n = Array.length table in
      let chosen = ref None in
      (let i = ref 0 in
       while !chosen = None && !i < n do
         if matches_flow st table.(!i) then chosen := Some table.(!i);
         incr i
       done);
      match !chosen with
      | None -> () (* table miss with no catch-all flow: stop *)
      | Some f ->
        let next = ref None in
        List.iter
          (fun (a : Openflow.action) ->
            match a with
            | Openflow.Output p -> clones := p :: !clones
            | Openflow.Group _ -> ()
            | Openflow.SetField (name, v) -> write t st name v
            | Openflow.CopyField (dst, src) -> write t st dst (read st src)
            | Openflow.AddConst (name, k, w) ->
              Hashtbl.replace st.fields name
                (mask_w w (Int64.add (read st name) k))
            | Openflow.PushVlan -> Hashtbl.replace st.valid "vlan" ()
            | Openflow.PopVlan -> Hashtbl.remove st.valid "vlan"
            | Openflow.ToController tag -> t.tags <- tag :: t.tags
            | Openflow.DropAction -> ()
            | Openflow.Goto g ->
              if g <= tid then error "goto must move forward";
              next := Some g)
          f.actions;
        (match !next with
        | Some g when g < limit -> run g (fuel - 1)
        | _ -> ())
    end
  in
  run first 64;
  !clones

(* ---------------- packet processing ---------------- *)

let reg_is_set (st : pstate) name = not (Int64.equal (read st name) 0L)

let process t ~(in_port : int) (pkt : P4.Packet.t) : (int * P4.Packet.t) list =
  t.tags <- [];
  match parse t pkt with
  | None -> [] (* parser reject *)
  | Some st ->
    write t st "meta.ingress_port" (Int64.of_int in_port);
    let clone_ports = run_region t st ~first:0 ~limit:t.ing_limit in
    if reg_is_set st Openflow.reg_dropped then []
    else begin
      let copies = ref [] in
      let mcast = read st Openflow.reg_mcast in
      if Int64.equal mcast 0L && reg_is_set st Openflow.reg_has_dest then
        copies := [ (read st Openflow.reg_egress, copy_pstate st) ];
      if not (Int64.equal mcast 0L) then
        List.iter
          (fun port ->
            (* do not reflect back to the ingress port *)
            if not (Int64.equal port (Int64.of_int in_port)) then
              copies := (port, copy_pstate st) :: !copies)
          (Option.value ~default:[] (List.assoc_opt mcast t.groups));
      List.iter
        (fun port ->
          let c = copy_pstate st in
          write t c "meta.is_clone" 1L;
          copies := (port, c) :: !copies)
        clone_ports;
      let n_tables = t.ofp.Openflow.n_tables in
      List.filter_map
        (fun (port, c) ->
          write t c "meta.egress_port" port;
          Hashtbl.replace c.fields Openflow.reg_dropped 0L;
          ignore (run_region t c ~first:t.ing_limit ~limit:n_tables);
          if reg_is_set c Openflow.reg_dropped then None
          else Some (Int64.to_int port, deparse t c))
        (List.rev !copies)
    end

let digests t = List.rev t.tags
