(* An OpenFlow-style multi-table flow pipeline: the compilation target
   of the p4c-of analog ([Compile]) and the unit in which the Fig. 3
   experiment counts "program fragments".

   A flow program is a set of numbered tables; each flow has a priority,
   a match over named fields, and an action list ending either in
   forwarding actions or a goto to a later table. *)

type field_match = {
  mfield : string;               (* e.g. "ethernet.dst", "meta.vlan_id" *)
  mvalue : int64;
  mmask : int64 option;          (* None = exact *)
}

type action =
  | Output of int64
  | Group of int64               (* multicast group *)
  | SetField of string * int64
  | CopyField of string * string (* dst <- src, masked to dst width *)
  | AddConst of string * int64 * int (* f <- (f + k) mod 2^width *)
  | PushVlan                     (* make the vlan header valid *)
  | PopVlan
  | ToController of string       (* digest/packet-in tag *)
  | DropAction
  | Goto of int                  (* continue at table N *)

type flow = {
  table_id : int;
  priority : int;
  matches : field_match list;
  actions : action list;
  cookie : string;               (* provenance: which feature/fragment emitted it *)
}

type t = {
  mutable flows : flow list;
  mutable n_tables : int;
  mutable egress_start : int option;
      (* first table of the egress region, if the source pipeline had
         egress control; tables in [egress_start, n_tables) run once per
         replicated packet copy (see [Eval]) *)
}

let create () : t = { flows = []; n_tables = 0; egress_start = None }

let add_flow (prog : t) (f : flow) =
  prog.flows <- f :: prog.flows;
  if f.table_id + 1 > prog.n_tables then prog.n_tables <- f.table_id + 1

let flow_count (prog : t) = List.length prog.flows

(** Number of distinct fragments: flows grouped by provenance cookie.
    This is the metric Fig. 3 tracks — each cookie corresponds to one
    flow-emitting code site in a traditional controller. *)
let fragment_count (prog : t) =
  List.sort_uniq String.compare (List.map (fun f -> f.cookie) prog.flows)
  |> List.length

let flows_in_table (prog : t) id =
  List.filter (fun f -> f.table_id = id) prog.flows

(* ---------------- flow deltas ---------------- *)

type flow_delta = {
  fd_add : flow list;
  fd_mod : (flow * flow) list;
  fd_del : flow list;
}

let delta_empty = { fd_add = []; fd_mod = []; fd_del = [] }

let delta_size d =
  List.length d.fd_add + List.length d.fd_mod + List.length d.fd_del

let delta_union a b =
  if delta_size b = 0 then a
  else if delta_size a = 0 then b
  else
    {
      fd_add = a.fd_add @ b.fd_add;
      fd_mod = a.fd_mod @ b.fd_mod;
      fd_del = a.fd_del @ b.fd_del;
    }

(* Pair an add and a delete in the same table over the same match into
   a modify; already-paired modifies pass through. *)
let pair_modifies (d : flow_delta) : flow_delta =
  if d.fd_add = [] || d.fd_del = [] then d
  else begin
    let by_match : (int * field_match list, flow list) Hashtbl.t =
      Hashtbl.create 16
    in
    List.iter
      (fun f ->
        let key = (f.table_id, f.matches) in
        let cur = Option.value ~default:[] (Hashtbl.find_opt by_match key) in
        Hashtbl.replace by_match key (cur @ [ f ]))
      d.fd_del;
    let mods = ref [] in
    let adds =
      List.filter
        (fun f ->
          let key = (f.table_id, f.matches) in
          match Hashtbl.find_opt by_match key with
          | Some (old :: rest) ->
              (if rest = [] then Hashtbl.remove by_match key
               else Hashtbl.replace by_match key rest);
              mods := (old, f) :: !mods;
              false
          | _ -> true)
        d.fd_add
    in
    let dels =
      List.filter
        (fun f ->
          match Hashtbl.find_opt by_match (f.table_id, f.matches) with
          | Some (old :: rest) when old == f ->
              (if rest = [] then Hashtbl.remove by_match (f.table_id, f.matches)
               else Hashtbl.replace by_match (f.table_id, f.matches) rest);
              true
          | _ -> false)
        d.fd_del
    in
    { fd_add = adds; fd_mod = d.fd_mod @ List.rev !mods; fd_del = dels }
  end

let diff ~old_flows ~new_flows : flow_delta =
  (* multiset difference on whole flows, then pair into modifies *)
  let counts : (flow, int) Hashtbl.t = Hashtbl.create 64 in
  List.iter
    (fun f ->
      Hashtbl.replace counts f
        (1 + Option.value ~default:0 (Hashtbl.find_opt counts f)))
    old_flows;
  let adds =
    List.filter
      (fun f ->
        match Hashtbl.find_opt counts f with
        | Some n when n > 0 ->
            Hashtbl.replace counts f (n - 1);
            false
        | _ -> true)
      new_flows
  in
  let dels =
    List.filter
      (fun f ->
        match Hashtbl.find_opt counts f with
        | Some n when n > 0 ->
            Hashtbl.replace counts f (n - 1);
            true
        | _ -> false)
      old_flows
  in
  pair_modifies { fd_add = adds; fd_mod = []; fd_del = dels }

let apply_delta (prog : t) (d : flow_delta) =
  let removals : (flow, int) Hashtbl.t = Hashtbl.create 16 in
  let want f =
    Hashtbl.replace removals f
      (1 + Option.value ~default:0 (Hashtbl.find_opt removals f))
  in
  List.iter want d.fd_del;
  List.iter (fun (old, _) -> want old) d.fd_mod;
  prog.flows <-
    List.filter
      (fun f ->
        match Hashtbl.find_opt removals f with
        | Some n when n > 0 ->
            Hashtbl.replace removals f (n - 1);
            false
        | _ -> true)
      prog.flows;
  Hashtbl.iter
    (fun f n ->
      if n > 0 then
        invalid_arg
          (Printf.sprintf "Openflow.apply_delta: flow to delete not present: %d"
             f.table_id))
    removals;
  List.iter (add_flow prog) d.fd_add;
  List.iter (fun (_, f) -> add_flow prog f) d.fd_mod

(* ---------------- evaluation ---------------- *)

(* Packets for the flow pipeline are symbolic: named fields to values,
   plus a set of "present" headers for push/pop semantics. *)

type fpacket = {
  mutable fields : (string * int64) list;
  mutable present : string list;   (* header names, e.g. "vlan" *)
}

(* "valid.<hdr>" is a pseudo-field reflecting header presence, so the
   FDD compiler can lower [EValid] conditions to ordinary mask tests. *)
let valid_prefix = "valid."

let header_of_valid name =
  let n = String.length valid_prefix in
  if String.length name > n && String.sub name 0 n = valid_prefix then
    Some (String.sub name n (String.length name - n))
  else None

let field (pkt : fpacket) name =
  match header_of_valid name with
  | Some h -> if List.mem h pkt.present then 1L else 0L
  | None -> Option.value ~default:0L (List.assoc_opt name pkt.fields)

let set_pkt_field (pkt : fpacket) name v =
  pkt.fields <- (name, v) :: List.remove_assoc name pkt.fields

let matches_flow (pkt : fpacket) (f : flow) : bool =
  List.for_all
    (fun m ->
      let v = field pkt m.mfield in
      match m.mmask with
      | None -> Int64.equal v m.mvalue
      | Some mask -> Int64.equal (Int64.logand v mask) (Int64.logand m.mvalue mask))
    f.matches

type verdict = {
  outputs : int64 list;
  groups : int64 list;
  controller : string list;
  final : fpacket;
}

exception Eval_error of string

(* Register fields used by the P4 compiler to model the v1model
   forwarding decision (the OVS register idiom): the verdict is read
   from them when the pipeline ends. *)
let reg_egress = "reg.egress_spec"
let reg_has_dest = "reg.has_dest"
let reg_mcast = "reg.mcast_grp"
let reg_dropped = "reg.dropped"

(** Run a symbolic packet through the pipeline starting at table 0.
    The verdict combines immediate [Output]/[Group] actions with the
    final forwarding registers (see [reg_egress] etc.). *)
let eval (prog : t) (pkt : fpacket) : verdict =
  let outputs = ref [] and groups = ref [] and controller = ref [] in
  let rec run table_id fuel =
    if fuel <= 0 then raise (Eval_error "goto loop");
    let candidates = List.filter (matches_flow pkt) (flows_in_table prog table_id) in
    match
      List.fold_left
        (fun best f ->
          match best with
          | None -> Some f
          | Some b -> if f.priority > b.priority then Some f else best)
        None candidates
    with
    | None -> () (* table miss with no default flow: stop *)
    | Some f ->
      let next = ref None in
      List.iter
        (fun a ->
          match a with
          | Output p -> outputs := p :: !outputs
          | Group g -> groups := g :: !groups
          | SetField (name, v) -> set_pkt_field pkt name v
          | CopyField (dst, src) -> set_pkt_field pkt dst (field pkt src)
          | AddConst (name, k, w) ->
            let v = Int64.add (field pkt name) k in
            let v =
              if w >= 64 then v
              else Int64.logand v (Int64.sub (Int64.shift_left 1L w) 1L)
            in
            set_pkt_field pkt name v
          | PushVlan -> if not (List.mem "vlan" pkt.present) then
              pkt.present <- "vlan" :: pkt.present
          | PopVlan -> pkt.present <- List.filter (fun h -> h <> "vlan") pkt.present
          | ToController tag -> controller := tag :: !controller
          | DropAction -> ()
          | Goto t ->
            if t <= table_id then raise (Eval_error "goto must move forward");
            next := Some t)
        f.actions;
      match !next with Some t -> run t (fuel - 1) | None -> ()
  in
  run 0 64;
  (* final forwarding verdict from the registers *)
  if field pkt reg_dropped = 0L then begin
    let mcast = field pkt reg_mcast in
    if mcast <> 0L then groups := mcast :: !groups
    else if field pkt reg_has_dest = 1L then
      outputs := field pkt reg_egress :: !outputs
  end;
  { outputs = List.rev !outputs; groups = List.rev !groups;
    controller = List.rev !controller; final = pkt }

(* ---------------- shadowed-rule elimination ---------------- *)

let match_mask (m : field_match) = Option.value ~default:(-1L) m.mmask

(* [subsumes g f]: does [g] match every packet [f] matches?  True when
   each of [g]'s field constraints is implied by one of [f]'s: [f]
   constrains at least the same bits and agrees with [g] on them. *)
let subsumes (g : flow) (f : flow) =
  List.for_all
    (fun gm ->
      let gmask = match_mask gm in
      List.exists
        (fun fm ->
          String.equal fm.mfield gm.mfield
          && Int64.equal (Int64.logand (match_mask fm) gmask) gmask
          && Int64.equal
               (Int64.logand fm.mvalue gmask)
               (Int64.logand gm.mvalue gmask))
        f.matches)
    g.matches

(** Drop every flow fully shadowed by a strictly-higher-priority flow in
    the same table (the Ox tutorial's "shadowed rule" pitfall).  Flows
    at equal priority are never compared: the pipeline only guarantees
    an arbitrary winner among equal-priority overlaps, so removing one
    could change which arbitrary winner fires. *)
let eliminate_shadowed (prog : t) : t =
  let by_table = Hashtbl.create 8 in
  List.iter
    (fun f ->
      let cur = Option.value ~default:[] (Hashtbl.find_opt by_table f.table_id) in
      Hashtbl.replace by_table f.table_id (f :: cur))
    prog.flows;
  (* prog.flows is newest-first; the per-table cons above restores
     insertion order *)
  let out = create () in
  out.n_tables <- prog.n_tables;
  out.egress_start <- prog.egress_start;
  let table_ids =
    Hashtbl.fold (fun id _ acc -> id :: acc) by_table [] |> List.sort Int.compare
  in
  List.iter
    (fun tid ->
      let flows =
        List.stable_sort
          (fun a b -> Int.compare b.priority a.priority)
          (Hashtbl.find by_table tid)
      in
      let kept = ref [] in
      List.iter
        (fun f ->
          let shadowed =
            List.exists (fun g -> g.priority > f.priority && subsumes g f) !kept
          in
          if not shadowed then kept := f :: !kept)
        flows;
      List.iter (add_flow out) (List.rev !kept))
    table_ids;
  (* restore newest-first orientation consistent with add_flow usage *)
  out

let action_to_string = function
  | Output p -> Printf.sprintf "output:%Ld" p
  | Group g -> Printf.sprintf "group:%Ld" g
  | SetField (f, v) -> Printf.sprintf "set_field:%s=%Ld" f v
  | CopyField (d, s) -> Printf.sprintf "copy_field:%s<-%s" d s
  | AddConst (f, k, w) -> Printf.sprintf "add:%s+=%Ld/%d" f k w
  | PushVlan -> "push_vlan"
  | PopVlan -> "pop_vlan"
  | ToController tag -> "controller(" ^ tag ^ ")"
  | DropAction -> "drop"
  | Goto t -> Printf.sprintf "goto:%d" t

let flow_to_string (f : flow) =
  Printf.sprintf "table=%d priority=%d %s actions=%s cookie=%s" f.table_id
    f.priority
    (String.concat ","
       (List.map
          (fun m ->
            match m.mmask with
            | None -> Printf.sprintf "%s=%Ld" m.mfield m.mvalue
            | Some mask -> Printf.sprintf "%s=%Ld/%Ld" m.mfield m.mvalue mask)
          f.matches))
    (String.concat "," (List.map action_to_string f.actions))
    f.cookie

let dump (prog : t) : string =
  prog.flows
  |> List.sort (fun a b ->
         let c = Int.compare a.table_id b.table_id in
         if c <> 0 then c else Int.compare b.priority a.priority)
  |> List.map flow_to_string
  |> String.concat "\n"
