(** The p4c-of analog: compile a mini-P4 program plus its installed
    table entries into an OpenFlow flow pipeline.

    {!compile} is the FDD backend: each physical table's rank-sorted
    entries (and [If] control flow with trivial branches) fold into one
    hash-consed forwarding decision diagram ({!Fdd}), and flows are
    extracted with shadowed-path elimination and per-disjointness-group
    priorities.  [If] with larger branches becomes a condition table
    whose rows [Goto] the branch region.  Ingress tables occupy
    [0, egress_start); egress tables follow and run once per replicated
    copy ({!Eval}).

    {!compile_naive} is the historical per-entry translator — one flow
    per entry, no conditionals — kept as the flow-count/compile-time
    reference and for the old linear-pipeline semantics tests.

    One documented semantic difference: a dropped packet stops at the
    dropping table instead of traversing the rest of the pipeline, so
    digests after a drop are not emitted (forwarding verdicts agree —
    drops are sticky). *)

exception Unsupported of string

val table_sequence : P4.Program.control -> string list
(** The linear table application order of a control.
    @raise Unsupported on conditional control flow. *)

val compile : P4.Switch.t -> Openflow.t
(** FDD-based compilation of the switch's program and current entries.
    Supports [If] conditions over header validity, field = constant,
    and boolean connectives.  Emits no flow for fully-shadowed entries
    and uses one priority level per disjointness group.
    @raise Unsupported on out-of-scope programs. *)

val compile_naive : P4.Switch.t -> Openflow.t
(** Per-entry translation: every entry becomes a flow at a priority
    derived from its position in the [Entry.rank_compare] order (the
    old [1 + priority + lpm_length] scheme collided ranks across the
    two dimensions), plus a priority-0 miss flow per table.
    @raise Unsupported on conditional control flow. *)
