(** The p4c-of analog: compile a mini-P4 program plus its installed
    table entries into an OpenFlow flow pipeline.

    {!compile} is the FDD backend: each physical table's rank-sorted
    entries (and [If] control flow with trivial branches) fold into one
    hash-consed forwarding decision diagram ({!Fdd}), and flows are
    extracted with shadowed-path elimination and per-disjointness-group
    priorities.  [If] with larger branches becomes a condition table
    whose rows [Goto] the branch region.  Ingress tables occupy
    [0, egress_start); egress tables follow and run once per replicated
    copy ({!Eval}).

    {!compile_naive} is the historical per-entry translator — one flow
    per entry, no conditionals — kept as the flow-count/compile-time
    reference and for the old linear-pipeline semantics tests.

    One documented semantic difference: a dropped packet stops at the
    dropping table instead of traversing the rest of the pipeline, so
    digests after a drop are not emitted (forwarding verdicts agree —
    drops are sticky). *)

exception Unsupported of string

val table_sequence : P4.Program.control -> string list
(** The linear table application order of a control.
    @raise Unsupported on conditional control flow. *)

val compile : P4.Switch.t -> Openflow.t
(** FDD-based compilation of the switch's program and current entries.
    Supports [If] conditions over header validity, field = constant,
    and boolean connectives.  Emits no flow for fully-shadowed entries
    and uses one priority level per disjointness group.
    @raise Unsupported on out-of-scope programs. *)

val compile_naive : P4.Switch.t -> Openflow.t
(** Per-entry translation: every entry becomes a flow at a priority
    derived from its position in the [Entry.rank_compare] order (the
    old [1 + priority + lpm_length] scheme collided ranks across the
    two dimensions), plus a priority-0 miss flow per table.
    @raise Unsupported on conditional control flow. *)

val fold_flows : P4.Switch.t -> init:'a -> f:('a -> Openflow.flow -> 'a) -> 'a
(** Streaming variant of {!compile}: folds [f] over the flows of each
    physical table in emission order without materialising a row list —
    extraction walks each plan diagram twice (once to count rows and
    groups, once to emit), so a 10^6-entry table compiles in memory
    bounded by the diagram, not the flow count.  The flow sequence is
    identical to {!compile}'s.
    @raise Unsupported on out-of-scope programs. *)

(** Incremental compilation state: keeps each physical table's decision
    diagram and extracted flows alive between recompiles so that entry
    churn patches the diagram and emits flow {i deltas} instead of
    recompiling from scratch.  Single-LPM tables — the common FIB shape
    — get the fast path: an add/remove splices the sorted fold spine,
    re-unioning only entries finer than the churn point, and a linear
    rescan re-derives priorities analytically; other tables refold from
    a maintained entry mirror.  {!compile} remains the from-scratch
    oracle the differential tests compare against. *)
module State : sig
  type t

  val create : ?compact_threshold:int -> P4.Switch.t -> t
  (** Snapshot the switch's program and current entries.  The state
      mirrors entries internally from then on: feed churn through
      {!apply_delta}; mutating the switch directly desynchronises it.
      [compact_threshold] (default [1_000_000]) bounds the manager's
      interned node count; exceeding it after a delta triggers
      {!Fdd.compact} plus a decision-table sweep.
      @raise Unsupported on out-of-scope programs. *)

  val apply_delta :
    t -> (string * (P4.Entry.t * int) list) list -> Openflow.flow_delta
  (** Apply Z-set-shaped churn — per logical table, [(entry, weight)]
      with positive weights as inserts and negative as deletes, using
      the switch's replace-by-match insert semantics — and return the
      flow delta against the previous state.  Removing an absent entry
      is a no-op, like [Switch.delete_entry].
      @raise Invalid_argument on an unknown table name. *)

  val flows : t -> Openflow.t
  (** The full current pipeline; equal (up to [dump]) to what
      {!compile} produces from the same entries. *)

  val diagrams : t -> (int * Fdd.t) list
  (** [(table_id, diagram)] per physical table, for differential
      comparison against a from-scratch compile. *)

  val render : t -> (int * string) list
  (** [(table_id, text)] per physical table, with every leaf spelled
      out as its decision (table entry, default, pass, jump).  Unlike
      {!diagrams}' raw leaves — whose interned ids depend on first-use
      order — renderings are byte-comparable across states, so two
      states over the same entries render identically iff their
      diagrams are semantically identical. *)

  val node_count : t -> int
  (** Nodes interned in the state's diagram manager. *)

  val compactions : t -> int
  (** Times the compaction threshold has been hit. *)

  val swept : t -> int
  (** Total nodes reclaimed across all compactions. *)
end
