(** An OpenFlow-pipeline evaluator over real packets — the differential
    oracle for {!Compile}.

    Where {!Openflow.eval} runs a hand-built symbolic packet through the
    flow tables, [Eval] runs actual packet bytes through the whole
    compiled artefact with v1model replication semantics: it parses with
    the source program's parser, runs the ingress table region, applies
    the forwarding registers (unicast / multicast groups / clones, drop
    is sticky), runs the egress region once per copy, and deparses.  Its
    outputs are directly comparable to [P4.Switch.process] — compare as
    sorted (port, bytes) lists, since replication order between clones
    is unspecified.

    Known, documented divergence inherited from {!Compile}: digests and
    counters after a drop are not replayed (the OpenFlow pipeline stops
    at the dropping row; the interpreter keeps evaluating tables).
    Forwarding outputs agree because drops are sticky in both. *)

type t

val create :
  ?groups:(int64 * int64 list) list -> P4.Program.t -> Openflow.t -> t
(** Build an evaluator for a compiled pipeline.  [groups] supplies
    multicast group definitions (defaults to none). *)

val of_switch : P4.Switch.t -> Openflow.t -> t
(** [create] with the program and multicast groups taken from a live
    switch — the usual differential setup. *)

val process : t -> in_port:int -> P4.Packet.t -> (int * P4.Packet.t) list
(** Run one packet: parse, ingress tables, replication, egress tables
    per copy, deparse.  Parser rejects and drops yield [[]]. *)

val digests : t -> string list
(** Digest/packet-in tags emitted by the most recent [process] call, in
    emission order. *)
