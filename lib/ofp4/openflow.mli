(** An OpenFlow-style multi-table flow pipeline: the compilation target
    of the p4c-of analog ({!Compile}) and the unit in which the Fig. 3
    experiment counts "program fragments". *)

type field_match = {
  mfield : string;        (** e.g. ["ethernet.dst"], ["meta.vlan_id"] *)
  mvalue : int64;
  mmask : int64 option;   (** [None] = exact *)
}

type action =
  | Output of int64
  | Group of int64
  | SetField of string * int64
  | CopyField of string * string
      (** [dst <- src], masked to [dst]'s width where known *)
  | AddConst of string * int64 * int
      (** [f <- (f + k) mod 2^width] — covers TTL decrement and friends *)
  | PushVlan
  | PopVlan
  | ToController of string  (** digest / packet-in tag *)
  | DropAction
  | Goto of int             (** continue at a strictly later table *)

type flow = {
  table_id : int;
  priority : int;
  matches : field_match list;
  actions : action list;
  cookie : string;  (** provenance: which feature/fragment emitted it *)
}

type t = {
  mutable flows : flow list;
  mutable n_tables : int;
  mutable egress_start : int option;
      (** first table of the egress region, if the source pipeline has
          egress control; those tables run once per replicated copy *)
}

val create : unit -> t
val add_flow : t -> flow -> unit
val flow_count : t -> int

val eliminate_shadowed : t -> t
(** Drop every flow fully shadowed by a single strictly-higher-priority
    flow in the same table (a higher-priority flow whose match is a
    superset of the shadowed flow's).  Equal-priority flows are never
    removed.  Preserves [n_tables]/[egress_start]. *)

val fragment_count : t -> int
(** Distinct provenance cookies — each corresponds to one flow-emitting
    code site in a traditional controller (the Fig. 3 metric). *)

val flows_in_table : t -> int -> flow list

(** {1 Flow deltas}

    The unit of incremental flow programming: what {!Compile.State}
    emits on entry churn instead of a full table. *)

type flow_delta = {
  fd_add : flow list;
  fd_mod : (flow * flow) list;
      (** [(old, new)] pairs in the same table over the same match —
          an OpenFlow flow-mod rather than a delete/add pair *)
  fd_del : flow list;
}

val delta_empty : flow_delta
val delta_size : flow_delta -> int
val delta_union : flow_delta -> flow_delta -> flow_delta

val pair_modifies : flow_delta -> flow_delta
(** Coalesce an add and a delete in the same table over the same match
    into a modify; existing modifies pass through. *)

val diff : old_flows:flow list -> new_flows:flow list -> flow_delta
(** Multiset difference on whole flows; an add and a delete in the same
    table over the same match pair into a modify. *)

val apply_delta : t -> flow_delta -> unit
(** Replay a delta in place: remove [fd_del] and modify-olds, then add
    [fd_add] and modify-news. @raise Invalid_argument when a flow to
    delete or modify is not present. *)

(** {1 Evaluation} *)

type fpacket = {
  mutable fields : (string * int64) list;
  mutable present : string list;  (** header names, for push/pop *)
}

type verdict = {
  outputs : int64 list;
  groups : int64 list;
  controller : string list;
  final : fpacket;
}

exception Eval_error of string

(** Register fields through which the P4 compiler models the v1model
    forwarding decision (the OVS register idiom). *)

val reg_egress : string
val reg_has_dest : string
val reg_mcast : string
val reg_dropped : string

val eval : t -> fpacket -> verdict
(** Run a symbolic packet from table 0; the verdict combines immediate
    [Output]/[Group] actions with the final forwarding registers.
    @raise Eval_error on goto loops. *)

val field : fpacket -> string -> int64
(** Field read with defaulting: unknown fields are [0]; ["valid.<hdr>"]
    pseudo-fields reflect header presence. *)

val header_of_valid : string -> string option
(** [Some hdr] when the field name is the ["valid.<hdr>"] pseudo-field
    for header presence, [None] otherwise. *)

val flow_to_string : flow -> string
val dump : t -> string
