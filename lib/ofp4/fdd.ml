type test = { tfield : string; tmask : int64; tvalue : int64 }

type t = Leaf of int | Node of { id : int; test : test; hi : t; lo : t }

type manager = {
  order : string -> int;
  nodes : (string * int64 * int64 * int * int, t) Hashtbl.t;
  umemo : (int * int, t) Hashtbl.t;
  mutable next_id : int;
}

let create ~order () =
  { order; nodes = Hashtbl.create 1024; umemo = Hashtbl.create 1024; next_id = 0 }

let undef = Leaf 0

let leaf v =
  if v < 0 then invalid_arg "Fdd.leaf: decisions are non-negative";
  Leaf v

let id = function Leaf v -> -v - 1 | Node n -> n.id

let popcount (x : int64) =
  let rec go x acc =
    if x = 0L then acc else go (Int64.logand x (Int64.sub x 1L)) (acc + 1)
  in
  go x 0

let test_compare m a b =
  let c = Int.compare (m.order a.tfield) (m.order b.tfield) in
  if c <> 0 then c
  else
    let c = String.compare a.tfield b.tfield in
    if c <> 0 then c
    else
      (* descending popcount: more-specific masks nearer the root, so all
         rows of one prefix length extract contiguously *)
      let c = Int.compare (popcount b.tmask) (popcount a.tmask) in
      if c <> 0 then c
      else
        let c = Int64.unsigned_compare b.tmask a.tmask in
        if c <> 0 then c else Int64.unsigned_compare a.tvalue b.tvalue

let node m test hi lo =
  if test.tmask = 0L then hi
  else
    let test = { test with tvalue = Int64.logand test.tvalue test.tmask } in
    if id hi = id lo then hi
    else
      let key = (test.tfield, test.tmask, test.tvalue, id hi, id lo) in
      match Hashtbl.find_opt m.nodes key with
      | Some n -> n
      | None ->
          let n = Node { id = m.next_id; test; hi; lo } in
          m.next_id <- m.next_id + 1;
          Hashtbl.add m.nodes key n;
          n

(* Union walks the lo spine with an explicit accumulator: rank-sorted
   entry chains are one long lo path, and a recursive descent would need
   O(entries) stack.  The hi side recurses natively — hi subtrees are
   bounded by the key schema, not the entry count. *)
let union m a0 b0 =
  let rec descend a b acc =
    if id a = id b then finish a acc
    else
      match (a, b) with
      | Leaf v, _ when v <> 0 -> finish a acc
      | Leaf _, _ -> finish b acc
      | _, Leaf 0 -> finish a acc
      | Node na, _ -> (
          let key = (id a, id b) in
          match Hashtbl.find_opt m.umemo key with
          | Some r -> finish r acc
          | None -> (
              match b with
              | Leaf _ ->
                  let hi = union_rec na.hi b in
                  descend na.lo b ((key, na.test, hi) :: acc)
              | Node nb ->
                  let c = test_compare m na.test nb.test in
                  if c = 0 then
                    let hi = union_rec na.hi nb.hi in
                    descend na.lo nb.lo ((key, na.test, hi) :: acc)
                  else if c < 0 then
                    let hi = union_rec na.hi b in
                    descend na.lo b ((key, na.test, hi) :: acc)
                  else
                    let hi = union_rec a nb.hi in
                    descend a nb.lo ((key, nb.test, hi) :: acc)))
  and union_rec a b = descend a b []
  and finish r acc =
    match acc with
    | [] -> r
    | (key, test, hi) :: rest ->
        let n = node m test hi r in
        Hashtbl.replace m.umemo key n;
        finish n rest
  in
  union_rec a0 b0

let union_all m ts =
  let rec round acc = function
    | [] -> List.rev acc
    | [ x ] -> List.rev (x :: acc)
    | a :: b :: rest -> round (union m a b :: acc) rest
  in
  let rec go = function
    | [] -> undef
    | [ x ] -> x
    | xs -> go (round [] xs)
  in
  go ts

let bind m t0 f =
  let memo : (int, t) Hashtbl.t = Hashtbl.create 64 in
  let rec descend t acc =
    match Hashtbl.find_opt memo (id t) with
    | Some r -> finish r acc
    | None -> (
        match t with
        | Leaf v ->
            let r = f v in
            Hashtbl.replace memo (id t) r;
            finish r acc
        | Node n ->
            let hi = go n.hi in
            descend n.lo ((id t, n.test, hi) :: acc))
  and go t = descend t []
  and finish r acc =
    match acc with
    | [] -> r
    | (key, test, hi) :: rest ->
        let n = node m test hi r in
        Hashtbl.replace memo key n;
        finish n rest
  in
  go t0

let iter_nodes t k =
  let seen = Hashtbl.create 64 in
  let stack = ref [ t ] in
  let continue = ref true in
  while !continue do
    match !stack with
    | [] -> continue := false
    | x :: rest ->
        stack := rest;
        let i = id x in
        if not (Hashtbl.mem seen i) then begin
          Hashtbl.add seen i ();
          k x;
          match x with
          | Leaf _ -> ()
          | Node n -> stack := n.hi :: n.lo :: !stack
        end
  done

let size t =
  let n = ref 0 in
  iter_nodes t (function Node _ -> incr n | Leaf _ -> ());
  !n

let node_count m = Hashtbl.length m.nodes
let memo_count m = Hashtbl.length m.umemo

let compact m ~roots =
  Hashtbl.reset m.umemo;
  let live = Hashtbl.create 4096 in
  (* one shared seen-set across roots: plan diagrams overlap heavily *)
  let stack = ref roots in
  let continue = ref true in
  while !continue do
    match !stack with
    | [] -> continue := false
    | x :: rest -> (
        stack := rest;
        let i = id x in
        if not (Hashtbl.mem live i) then begin
          Hashtbl.add live i ();
          match x with
          | Leaf _ -> ()
          | Node n -> stack := n.hi :: n.lo :: !stack
        end)
  done;
  let dead = ref [] in
  Hashtbl.iter
    (fun key n -> if not (Hashtbl.mem live (id n)) then dead := key :: !dead)
    m.nodes;
  List.iter (Hashtbl.remove m.nodes) !dead;
  List.length !dead

(* Structural equality across managers: same tests, same leaf decisions.
   Iterative with a visited-pair memo so 10^5-long lo spines neither
   overflow the stack nor blow up on shared subtrees. *)
let equal a0 b0 =
  let seen = Hashtbl.create 256 in
  let stack = ref [ (a0, b0) ] in
  let ok = ref true in
  let continue = ref true in
  while !continue && !ok do
    match !stack with
    | [] -> continue := false
    | (a, b) :: rest -> (
        stack := rest;
        let key = (id a, id b) in
        if not (Hashtbl.mem seen key) then begin
          Hashtbl.add seen key ();
          match (a, b) with
          | Leaf x, Leaf y -> if x <> y then ok := false
          | Node na, Node nb ->
              if
                String.equal na.test.tfield nb.test.tfield
                && Int64.equal na.test.tmask nb.test.tmask
                && Int64.equal na.test.tvalue nb.test.tvalue
              then stack := (na.hi, nb.hi) :: (na.lo, nb.lo) :: !stack
              else ok := false
          | Leaf _, Node _ | Node _, Leaf _ -> ok := false
        end)
  done;
  !ok

let leaves t =
  let acc = ref [] in
  iter_nodes t (function Leaf v -> acc := v :: !acc | Node _ -> ());
  List.sort_uniq Int.compare !acc

let test_to_string t =
  if Int64.equal t.tmask (-1L) then Printf.sprintf "%s=%Lu" t.tfield t.tvalue
  else Printf.sprintf "%s&%Lx=%Lx" t.tfield t.tmask t.tvalue

let to_string t =
  let buf = Buffer.create 256 in
  let rec go indent t =
    match t with
    | Leaf v -> Buffer.add_string buf (Printf.sprintf "%s[%d]\n" indent v)
    | Node n ->
        Buffer.add_string buf
          (Printf.sprintf "%s%s?\n" indent (test_to_string n.test));
        go (indent ^ "  ") n.hi;
        go (indent ^ "  ") n.lo
  in
  go "" t;
  Buffer.contents buf
