(** Hash-consed forwarding decision diagrams.

    An FDD is a binary decision diagram whose internal nodes test
    [field land mask = value] against a packet and whose leaves are
    small non-negative integers ("decisions") interned by the caller
    (Compile maps them to table entries, control-flow jumps, or
    booleans).  Exact, LPM and ternary matches all lower to mask
    tests, so one node shape covers every match kind.

    Diagrams are ordered: along any root-to-leaf path the tests
    strictly increase under {!test_compare} (the manager's field order
    first, then descending mask popcount so longer prefixes are tested
    before shorter ones on the same field).  Nodes are hash-consed in
    the manager, so equal subtrees are physically shared and have
    stable ids usable as memo keys.

    [union] is "prefer left": it implements the first-defined-wins
    semantics of a rank-sorted entry list folded over the distinguished
    {!undef} leaf.  Both [union] and [bind] peel the lo spine
    iteratively, so diagrams with 10^5-long priority chains do not
    overflow the OCaml stack. *)

type test = {
  tfield : string;  (** canonical field name, e.g. ["ipv4.dst"] or ["valid.vlan"] *)
  tmask : int64;    (** non-zero; tested bits *)
  tvalue : int64;   (** canonical: [tvalue land tmask = tvalue] *)
}

type t = private
  | Leaf of int  (** decision id, [>= 0]; [0] is {!undef} *)
  | Node of { id : int; test : test; hi : t; lo : t }
      (** [hi] when the test holds, [lo] otherwise *)

type manager

(** [create ~order ()] makes a fresh manager. [order f] ranks field
    [f]; smaller ranks are tested nearer the root. Distinct fields
    with equal ranks are ordered by name. *)
val create : order:(string -> int) -> unit -> manager

(** The "no decision yet" leaf: [leaf 0]. Union treats it as the
    identity on the left. *)
val undef : t

(** [leaf v] for [v >= 0]. Raises [Invalid_argument] on negatives. *)
val leaf : int -> t

(** Smart constructor: canonicalises [tvalue], collapses [hi == lo],
    and hash-conses. The caller must respect the manager's order
    (tests strictly increase toward the leaves); [union] and [bind]
    preserve it. *)
val node : manager -> test -> t -> t -> t

(** Total order on tests under the manager's field order: field rank,
    then mask popcount descending (more-specific first), then mask,
    then value. *)
val test_compare : manager -> test -> test -> int

(** Unique id of a diagram: node ids are [>= 0], a leaf [v] maps to
    [-(v+1)]. Stable across the manager's lifetime. *)
val id : t -> int

(** [union m a b] prefers [a] wherever [a] is not {!undef}. Memoised
    on (id, id) pairs in the manager. *)
val union : manager -> t -> t -> t

(** Balanced left-to-right fold of {!union} over the list (empty list
    yields {!undef}). Pass diagrams in rank order, highest first. *)
val union_all : manager -> t list -> t

(** [bind m t f] replaces every leaf [v] of [t] by the diagram [f v],
    hash-consing the result. Used to graft branch diagrams onto a
    condition diagram. The result is only guaranteed ordered when each
    [f v] sits below [t]'s deepest test; extraction does not require
    global order, so Compile may also use it to flip boolean leaves. *)
val bind : manager -> t -> (int -> t) -> t

(** Number of distinct internal nodes reachable from [t]. *)
val size : t -> int

(** Nodes currently interned in the manager, reachable or not. *)
val node_count : manager -> int

(** Entries currently held in the union memo table. *)
val memo_count : manager -> int

(** [compact m ~roots] clears the union memo and sweeps every interned
    node not reachable from [roots], returning the number swept.
    Diagrams reachable from [roots] stay valid (node ids are never
    reused); any other diagram previously built in [m] must not be
    used afterwards — re-interning one of its nodes would mint a fresh
    physical node, breaking id-based memoisation against the stale
    copy. Called by long-lived incremental compilation state between
    recompiles. *)
val compact : manager -> roots:t list -> int

(** Structural equality — same tests and leaf decisions in the same
    shape — valid across managers (physical ids are ignored).  Used by
    differential tests to compare incrementally patched diagrams with
    from-scratch compilations. *)
val equal : t -> t -> bool

(** Distinct decision ids appearing in [t]'s leaves (including
    {!undef} if reachable), ascending. *)
val leaves : t -> int list

val test_to_string : test -> string
val to_string : t -> string
