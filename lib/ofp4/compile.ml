(* The p4c-of analog: compile a mini-P4 program plus its current table
   entries into an OpenFlow flow pipeline.

   Two backends share the action translator:

   - [compile] (the default) builds one forwarding decision diagram per
     physical table — folding a table's rank-sorted entries, and [If]
     control flow whose branches are trivial, into a single ordered
     diagram — then extracts flows from the diagram.  Extraction prunes
     paths whose tests are implied or contradicted by the accumulated
     match, so fully-shadowed entries emit nothing, and assigns
     priorities per disjointness group rather than per rule.  [If]
     with non-trivial branches becomes a condition table whose rows
     [Goto] the branch's first table.

   - [compile_naive] is the historical per-entry translator: one flow
     per entry in rank order, no conditionals.  It is kept as the
     reference point for flow-count and compile-time comparisons.

   Actions compile as:

     Forward e    -> set reg.egress_spec/reg.has_dest
     Multicast e  -> set reg.mcast_grp
     Drop         -> set reg.dropped (no goto)
     EmitDigest d -> controller(d)
     Assign       -> set_field / copy_field / add (width-masked like the
                     interpreter's write_ref)
     SetValid     -> push_vlan (vlan header only), SetInvalid -> pop_vlan

   Expressions resolve to constants when the match path pins every bit
   they read (an FDD row knows the matched field values); otherwise a
   field-to-field [CopyField] or increment [AddConst] is emitted, and
   anything richer is [Unsupported].

   One documented semantic difference survives from the old compiler: a
   dropped packet stops at the dropping table instead of traversing the
   rest of the pipeline, so digests/counters after a drop are not
   emitted.  Forwarding verdicts agree because drops are sticky. *)

exception Unsupported of string

let unsupported fmt = Format.kasprintf (fun s -> raise (Unsupported s)) fmt

module SM = Map.Make (String)

(* The linear sequence of tables applied by a control. *)
let rec table_sequence (c : P4.Program.control) : string list =
  match c with
  | P4.Program.Nop -> []
  | P4.Program.Seq (a, b) -> table_sequence a @ table_sequence b
  | P4.Program.ApplyTable t -> [ t ]
  | P4.Program.If _ -> unsupported "conditional control flow"

let ref_name (r : P4.Program.fref) =
  match r with
  | P4.Program.Field (h, f) -> h ^ "." ^ f
  | P4.Program.Meta m -> "meta." ^ m

let valid_field h = "valid." ^ h

let mask_w w v =
  if w >= 64 then v else Int64.logand v (Int64.sub (Int64.shift_left 1L w) 1L)

let full_mask w = if w >= 64 then -1L else Int64.sub (Int64.shift_left 1L w) 1L

let ref_width_exn prog r =
  match P4.Program.ref_width prog r with
  | Ok w -> w
  | Error e -> unsupported "%s" e

let find_table_exn prog tname =
  match P4.Program.find_table prog tname with
  | Some t -> t
  | None -> unsupported "unknown table %s" tname

(* ---------------- action translation ---------------- *)

(* [env] is what the match path pins: field name -> (mask, value) with
   value canonical under the mask.  A field read resolves to a constant
   only when the path pins its full width. *)
type env = (int64 * int64) SM.t

let binop_value (op : P4.Program.binop) va vb =
  let bool_of c = if c then 1L else 0L in
  match op with
  | P4.Program.Add -> Int64.add va vb
  | P4.Program.Sub -> Int64.sub va vb
  | P4.Program.And -> Int64.logand va vb
  | P4.Program.Or -> Int64.logor va vb
  | P4.Program.Xor -> Int64.logxor va vb
  | P4.Program.Shl -> Int64.shift_left va (Int64.to_int vb)
  | P4.Program.Shr -> Int64.shift_right_logical va (Int64.to_int vb)
  | P4.Program.Eq -> bool_of (Int64.equal va vb)
  | P4.Program.Ne -> bool_of (not (Int64.equal va vb))
  | P4.Program.Lt -> bool_of (Int64.unsigned_compare va vb < 0)
  | P4.Program.Gt -> bool_of (Int64.unsigned_compare va vb > 0)
  | P4.Program.Le -> bool_of (Int64.unsigned_compare va vb <= 0)
  | P4.Program.Ge -> bool_of (Int64.unsigned_compare va vb >= 0)
  | P4.Program.BoolAnd -> bool_of ((not (Int64.equal va 0L)) && not (Int64.equal vb 0L))
  | P4.Program.BoolOr -> bool_of ((not (Int64.equal va 0L)) || not (Int64.equal vb 0L))

(* Constant-fold an action expression exactly as the interpreter's
   [eval] would compute it, using parameter values, path-pinned fields,
   and writes earlier in the same action body ([written] maps a field to
   [Some c] after a constant write, [None] after an opaque one). *)
let rec expr_value ~prog ~params ~(env : env) ~written ~validity
    (e : P4.Program.expr) : int64 option =
  let recur = expr_value ~prog ~params ~env ~written ~validity in
  match e with
  | P4.Program.EConst (w, v) -> Some (mask_w w v)
  | P4.Program.EParam p -> (
    match List.assoc_opt p params with
    | Some v -> Some v
    | None -> unsupported "unbound parameter %s" p)
  | P4.Program.ERef r -> (
    let name = ref_name r in
    match Hashtbl.find_opt written name with
    | Some (Some c) -> Some c
    | Some None -> None
    | None ->
      let fm = full_mask (ref_width_exn prog r) in
      (match SM.find_opt name env with
      | Some (m, v) when Int64.equal (Int64.logand fm (Int64.lognot m)) 0L ->
        Some (Int64.logand v fm)
      | _ -> None))
  | P4.Program.EValid h -> (
    match Hashtbl.find_opt validity h with
    | Some b -> Some (if b then 1L else 0L)
    | None -> (
      match SM.find_opt (valid_field h) env with
      | Some (m, v) when Int64.equal (Int64.logand m 1L) 1L ->
        Some (Int64.logand v 1L)
      | _ -> None))
  | P4.Program.ENot e ->
    Option.map (fun v -> if Int64.equal v 0L then 1L else 0L) (recur e)
  | P4.Program.EBin (op, a, b) -> (
    match (recur a, recur b) with
    | Some va, Some vb -> Some (binop_value op va vb)
    | _ -> None)

(* Compile one P4 action invocation into OpenFlow actions.  [env] pins
   match-path field values (empty for the naive backend). *)
let compile_action_body ~(prog : P4.Program.t) ~(env : env) ~(aname : string)
    ~(args : int64 list) ~(next : int option) : Openflow.action list =
  let action =
    match P4.Program.find_action prog aname with
    | Some a -> a
    | None -> unsupported "unknown action %s" aname
  in
  let params = List.map2 (fun (n, w) v -> (n, mask_w w v)) action.params args in
  let written : (string, int64 option) Hashtbl.t = Hashtbl.create 8 in
  let validity : (string, bool) Hashtbl.t = Hashtbl.create 4 in
  let acts = ref [] in
  let dropped = ref false in
  let emit a = acts := a :: !acts in
  let value e = expr_value ~prog ~params ~env ~written ~validity e in
  (* forwarding state writes: constant if resolvable, else a field copy *)
  let emit_store ~what reg e =
    match value e with
    | Some v -> emit (Openflow.SetField (reg, v))
    | None -> (
      match e with
      | P4.Program.ERef r -> emit (Openflow.CopyField (reg, ref_name r))
      | _ -> unsupported "%s expression is neither constant nor a field" what)
  in
  List.iter
    (fun prim ->
      match prim with
      | P4.Program.Forward e ->
        emit_store ~what:"forward" Openflow.reg_egress e;
        emit (Openflow.SetField (Openflow.reg_has_dest, 1L))
      | P4.Program.Multicast e -> emit_store ~what:"multicast" Openflow.reg_mcast e
      | P4.Program.Drop -> dropped := true
      | P4.Program.EmitDigest d -> emit (Openflow.ToController d)
      | P4.Program.Assign (P4.Program.Meta "egress_spec", e) ->
        (* writing egress_spec is how v1model programs unicast, so it
           must also arm has_dest; write_ref masks to 16 bits *)
        (match value e with
        | Some v -> emit (Openflow.SetField (Openflow.reg_egress, mask_w 16 v))
        | None -> (
          match e with
          | P4.Program.ERef r ->
            emit (Openflow.CopyField (Openflow.reg_egress, ref_name r));
            emit (Openflow.AddConst (Openflow.reg_egress, 0L, 16))
          | _ -> unsupported "egress_spec expression"));
        emit (Openflow.SetField (Openflow.reg_has_dest, 1L))
      | P4.Program.Assign (P4.Program.Meta "mcast_grp", e) ->
        (match value e with
        | Some v -> emit (Openflow.SetField (Openflow.reg_mcast, mask_w 16 v))
        | None -> (
          match e with
          | P4.Program.ERef r ->
            emit (Openflow.CopyField (Openflow.reg_mcast, ref_name r));
            emit (Openflow.AddConst (Openflow.reg_mcast, 0L, 16))
          | _ -> unsupported "mcast_grp expression"))
      | P4.Program.Assign (r, e) -> (
        let name = ref_name r in
        let w = ref_width_exn prog r in
        match value e with
        | Some v ->
          let v = mask_w w v in
          emit (Openflow.SetField (name, v));
          Hashtbl.replace written name (Some v)
        | None -> (
          let opaque () = Hashtbl.replace written name None in
          match e with
          | P4.Program.ERef s ->
            emit (Openflow.CopyField (name, ref_name s));
            opaque ()
          | P4.Program.EBin (P4.Program.Add, P4.Program.ERef s, k)
            when value k <> None ->
            let kv = Option.get (value k) in
            if not (String.equal (ref_name s) name) then
              emit (Openflow.CopyField (name, ref_name s));
            emit (Openflow.AddConst (name, kv, w));
            opaque ()
          | P4.Program.EBin (P4.Program.Add, k, P4.Program.ERef s)
            when value k <> None ->
            let kv = Option.get (value k) in
            if not (String.equal (ref_name s) name) then
              emit (Openflow.CopyField (name, ref_name s));
            emit (Openflow.AddConst (name, kv, w));
            opaque ()
          | P4.Program.EBin (P4.Program.Sub, P4.Program.ERef s, k)
            when value k <> None ->
            let kv = Option.get (value k) in
            if not (String.equal (ref_name s) name) then
              emit (Openflow.CopyField (name, ref_name s));
            emit (Openflow.AddConst (name, Int64.neg kv, w));
            opaque ()
          | _ -> unsupported "assignment to %s is not compilable" name))
      | P4.Program.SetValid "vlan" ->
        emit Openflow.PushVlan;
        Hashtbl.replace validity "vlan" true
      | P4.Program.SetInvalid "vlan" ->
        emit Openflow.PopVlan;
        Hashtbl.replace validity "vlan" false
      | P4.Program.SetValid h | P4.Program.SetInvalid h ->
        unsupported "header stack op on %s" h
      | P4.Program.CloneTo e -> (
        (* mirroring compiles to an extra output *)
        match value e with
        | Some v -> emit (Openflow.Output v)
        | None -> unsupported "clone port must be constant")
      | P4.Program.Count _ -> () (* counters are implicit per-flow in OF *)
      | P4.Program.RegWrite _ | P4.Program.RegRead _ ->
        unsupported "stateful registers")
    action.body;
  let base = List.rev !acts in
  if !dropped then base @ [ Openflow.SetField (Openflow.reg_dropped, 1L) ]
  else match next with Some t -> base @ [ Openflow.Goto t ] | None -> base

(* ---------------- the naive per-entry backend ---------------- *)

let compile_match (prog : P4.Program.t) (tbl : P4.Program.table)
    (matches : P4.Entry.match_value list) : Openflow.field_match list =
  List.concat
    (List.map2
       (fun (k : P4.Program.key) mv ->
         let width = ref_width_exn prog k.kref in
         let name = ref_name k.kref in
         match mv with
         | P4.Entry.MExact v -> [ { Openflow.mfield = name; mvalue = v; mmask = None } ]
         | P4.Entry.MLpm (v, len) ->
           [ { Openflow.mfield = name; mvalue = v;
               mmask = Some (P4.Entry.mask_of_prefix ~width ~prefix_len:len) } ]
         | P4.Entry.MTernary (v, m) ->
           [ { Openflow.mfield = name; mvalue = v; mmask = Some m } ]
         | P4.Entry.MAny -> [])
       tbl.keys matches)

(** The historical translator: one flow per entry, tables in application
    order, no conditionals.  Flow priorities are the entry's position in
    the rank order ([Entry.rank_compare]), not a sum of priority and LPM
    length — summing the two dimensions let an exact entry at priority N
    collide with an LPM /N entry, inverting winners. *)
let compile_naive (sw : P4.Switch.t) : Openflow.t =
  let prog = sw.P4.Switch.program in
  let egress_seq = table_sequence prog.egress in
  let sequence = table_sequence prog.ingress @ egress_seq in
  let out = Openflow.create () in
  let n = List.length sequence in
  List.iteri
    (fun idx tname ->
      let tbl = find_table_exn prog tname in
      let next = if idx + 1 < n then Some (idx + 1) else None in
      let entries = P4.Switch.table_entries_ranked sw tname in
      let count = List.length entries in
      List.iteri
        (fun i (e : P4.Entry.t) ->
          Openflow.add_flow out
            {
              Openflow.table_id = idx;
              priority = count - i;
              matches = compile_match prog tbl e.matches;
              actions =
                compile_action_body ~prog ~env:SM.empty ~aname:e.action
                  ~args:e.args ~next;
              cookie = Printf.sprintf "%s/%s" tname e.action;
            })
        entries;
      (* table-miss flow: the default action at priority 0 *)
      let dname, dargs = tbl.default_action in
      Openflow.add_flow out
        {
          Openflow.table_id = idx;
          priority = 0;
          matches = [];
          actions =
            compile_action_body ~prog ~env:SM.empty ~aname:dname ~args:dargs
              ~next;
          cookie = Printf.sprintf "%s/default:%s" tname dname;
        })
    sequence;
  out.n_tables <- max out.n_tables n;
  (if egress_seq <> [] then
     out.egress_start <- Some (n - List.length egress_seq));
  out

(* ---------------- the FDD backend ---------------- *)

(* What a diagram leaf means.  Ids are interned per compilation; id 0 is
   [Fdd.undef] ("no entry matched along this path" — emits nothing). *)
type decision =
  | Dentry of string * P4.Entry.t option  (* table, entry; None = default *)
  | Dpass                                 (* continue to the next table *)
  | Djump of int option                   (* goto a specific table / end *)
  | Dbool of bool                         (* condition outcome (internal) *)

type ctx = {
  prog : P4.Program.t;
  sw : P4.Switch.t;
  m : Fdd.manager;
  dec_ids : (decision, int) Hashtbl.t;
  dec_arr : (int, decision) Hashtbl.t;
  mutable next_dec : int;
}

let dec_id ctx d =
  match Hashtbl.find_opt ctx.dec_ids d with
  | Some i -> i
  | None ->
    let i = ctx.next_dec in
    ctx.next_dec <- i + 1;
    Hashtbl.add ctx.dec_ids d i;
    Hashtbl.add ctx.dec_arr i d;
    i

let dec_of ctx i = Hashtbl.find ctx.dec_arr i

(* Control linearization: a control is a list of items, each either a
   table or a conditional over two item lists. *)
type item =
  | ITable of P4.Program.table
  | ICond of P4.Program.expr * item list * item list

let rec items_of prog (c : P4.Program.control) : item list =
  match c with
  | P4.Program.Nop -> []
  | P4.Program.Seq (a, b) -> items_of prog a @ items_of prog b
  | P4.Program.ApplyTable t -> [ ITable (find_table_exn prog t) ]
  | P4.Program.If (c, a, b) -> [ ICond (c, items_of prog a, items_of prog b) ]

(* A conditional whose branches are at most one table folds into that
   table's diagram; anything larger needs its own condition table. *)
let is_simple = function [] | [ ITable _ ] -> true | _ -> false

let rec item_size = function
  | ITable _ -> 1
  | ICond (_, a, b) ->
    if is_simple a && is_simple b then 1 else 1 + n_phys a + n_phys b

and n_phys items = List.fold_left (fun acc it -> acc + item_size it) 0 items

(* Variable order: first syntactic appearance across the pipeline —
   condition fields and key columns in the order control flow reads
   them.  Fields never mentioned rank last (ties break on the name
   inside [Fdd.test_compare]). *)
let rec cond_fields (e : P4.Program.expr) acc =
  match e with
  | P4.Program.EValid h -> valid_field h :: acc
  | P4.Program.ERef r -> ref_name r :: acc
  | P4.Program.ENot e -> cond_fields e acc
  | P4.Program.EBin (_, a, b) -> cond_fields a (cond_fields b acc)
  | P4.Program.EConst _ | P4.Program.EParam _ -> acc

let field_order (stages : item list list) : string -> int =
  let rank : (string, int) Hashtbl.t = Hashtbl.create 32 in
  let n = ref 0 in
  let note f =
    if not (Hashtbl.mem rank f) then begin
      Hashtbl.add rank f !n;
      incr n
    end
  in
  let rec go items =
    List.iter
      (fun it ->
        match it with
        | ITable t ->
          List.iter (fun (k : P4.Program.key) -> note (ref_name k.kref)) t.keys
        | ICond (c, a, b) ->
          List.iter note (List.rev (cond_fields c []));
          go a;
          go b)
      items
  in
  List.iter go stages;
  fun f -> match Hashtbl.find_opt rank f with Some r -> r | None -> max_int

(* One table entry as a diagram: the conjunction of its match tests
   (sorted into the manager's order) over the entry's decision leaf,
   with [undef] on every test's miss side. *)
let entry_tests ctx (schema : (P4.Program.fref * P4.Program.match_kind * int) list)
    (e : P4.Entry.t) : Fdd.test list =
  let tests =
    List.concat
      (List.map2
         (fun (kref, _kind, width) mv ->
           let name = ref_name kref in
           match mv with
           | P4.Entry.MExact v ->
             [ { Fdd.tfield = name; tmask = full_mask width;
                 tvalue = mask_w width v } ]
           | P4.Entry.MLpm (v, len) ->
             let m = P4.Entry.mask_of_prefix ~width ~prefix_len:len in
             if Int64.equal m 0L then []
             else
               (* canonical under the mask: tests that differ only in
                  masked-out bits are the same test, and the LPM fold
                  order relies on equal tests comparing equal *)
               [ { Fdd.tfield = name; tmask = m; tvalue = Int64.logand v m } ]
           | P4.Entry.MTernary (v, m) ->
             if Int64.equal m 0L then []
             else [ { Fdd.tfield = name; tmask = m; tvalue = Int64.logand v m } ]
           | P4.Entry.MAny -> [])
         schema e.matches)
  in
  List.sort (Fdd.test_compare ctx.m) tests

let entry_fdd ctx schema tname (e : P4.Entry.t) : Fdd.t =
  let lf = Fdd.leaf (dec_id ctx (Dentry (tname, Some e))) in
  List.fold_right
    (fun t acc -> Fdd.node ctx.m t acc Fdd.undef)
    (entry_tests ctx schema e) lf

(* A whole table: union of its entries in rank order (first-defined
   wins) with the default action as the final catch-all.

   Single-LPM-key tables get a dedicated build order.  Pairwise
   [union_all] is quadratic there: whenever the right spine's test
   sorts first, union rebuilds the entire remaining left spine over the
   right entry's decision leaf, so a 10^5-route table never finishes.
   But for one LPM key the prefer-left order is free to change between
   entries whose tests cannot both hold: same-mask tests with distinct
   values are mutually exclusive, and when a finer and a coarser prefix
   both match, the finer entry outranks the coarser one under
   [Entry.rank_compare] regardless of priority (total prefix length
   dominates).  So entries may be folded coarsest-prefix-first,
   descending value within a prefix length, losers before winners on
   identical tests — an order in which every union prepends at the
   accumulator's root in O(1), giving an O(n log n) table build. *)
let table_schema_exn ctx (tbl : P4.Program.table) =
  match P4.Program.table_key_schema ctx.prog tbl with
  | Ok s -> s
  | Error e -> unsupported "%s" e

(* Does the table take the sorted single-LPM build (and, in [State],
   the spine-splice incremental path)? *)
let is_single_lpm (tbl : P4.Program.table) =
  match tbl.keys with
  | [ { P4.Program.kind = P4.Program.Lpm; _ } ] -> true
  | _ -> false

(* The single-LPM key of an entry: [None] for /0 (tests nothing).
   Only meaningful for {!is_single_lpm} tables. *)
let lpm_key ctx schema (e : P4.Entry.t) : Fdd.test option =
  match entry_tests ctx schema e with
  | [] -> None
  | [ t ] -> Some t
  | _ -> assert false

(* Fold order of the sorted single-LPM build: coarsest prefix first,
   losers before winners on equal tests, /0 entries ahead of every real
   prefix.  Total (zero only for same-match entries), so both the
   from-scratch fold and the incremental splice agree on placement. *)
let lpm_fold_order ctx (ta, ea) (tb, eb) =
  match (ta, tb) with
  | None, None -> P4.Entry.rank_compare ea eb
  | None, _ -> -1
  | _, None -> 1
  | Some a, Some b ->
    let c = Fdd.test_compare ctx.m a b in
    if c <> 0 then -c else P4.Entry.rank_compare ea eb

(* Prepend one entry of a sorted single-LPM fold onto the accumulator:
   exactly [Fdd.union (entry_fdd e) acc], specialised to the shapes the
   fold order guarantees (the new test is no coarser than the root, so
   the union either replaces an equal root test's hi leaf or wraps the
   whole accumulator).  O(1) instead of a spine walk. *)
let lpm_push ctx (t : Fdd.test option) (lf : Fdd.t) (acc : Fdd.t) : Fdd.t =
  match t with
  | None -> lf
  | Some t -> (
    match acc with
    | Fdd.Node nb when Fdd.test_compare ctx.m t nb.test = 0 ->
      Fdd.node ctx.m t lf nb.lo
    | _ -> Fdd.node ctx.m t lf acc)

let table_fdd_of_entries ctx (tbl : P4.Program.table) schema
    (entries : P4.Entry.t list) : Fdd.t =
  let dflt = Fdd.leaf (dec_id ctx (Dentry (tbl.tname, None))) in
  if is_single_lpm tbl then
    let keyed = List.map (fun e -> (lpm_key ctx schema e, e)) entries in
    List.fold_left
      (fun acc (_, e) -> Fdd.union ctx.m (entry_fdd ctx schema tbl.tname e) acc)
      dflt
      (List.sort (lpm_fold_order ctx) keyed)
  else
    let fdds = List.map (entry_fdd ctx schema tbl.tname) entries in
    Fdd.union_all ctx.m (fdds @ [ dflt ])

let table_fdd ctx (tbl : P4.Program.table) : Fdd.t =
  table_fdd_of_entries ctx tbl (table_schema_exn ctx tbl)
    (P4.Switch.table_entries_ranked ctx.sw tbl.tname)

let bool_leaf ctx b = Fdd.leaf (dec_id ctx (Dbool b))

let is_true ctx v =
  match dec_of ctx v with Dbool b -> b | _ -> assert false

(* A condition as a diagram with boolean leaves.  Supported shapes:
   header validity, field = constant (and negations), boolean
   connectives, constants. *)
let rec cond_fdd ctx (e : P4.Program.expr) : Fdd.t =
  let lt = bool_leaf ctx true and lf = bool_leaf ctx false in
  let mk test = Fdd.node ctx.m test lt lf in
  match e with
  | P4.Program.EConst (_, v) -> if Int64.equal v 0L then lf else lt
  | P4.Program.EValid h ->
    mk { Fdd.tfield = valid_field h; tmask = 1L; tvalue = 1L }
  | P4.Program.ENot e -> negate ctx (cond_fdd ctx e)
  | P4.Program.EBin (P4.Program.Eq, P4.Program.ERef r, P4.Program.EConst (_, v))
  | P4.Program.EBin (P4.Program.Eq, P4.Program.EConst (_, v), P4.Program.ERef r)
    ->
    let w = ref_width_exn ctx.prog r in
    mk { Fdd.tfield = ref_name r; tmask = full_mask w; tvalue = mask_w w v }
  | P4.Program.EBin (P4.Program.Ne, a, b) ->
    negate ctx (cond_fdd ctx (P4.Program.EBin (P4.Program.Eq, a, b)))
  | P4.Program.EBin (P4.Program.BoolAnd, a, b) ->
    Fdd.bind ctx.m (cond_fdd ctx a) (fun v ->
        if is_true ctx v then cond_fdd ctx b else lf)
  | P4.Program.EBin (P4.Program.BoolOr, a, b) ->
    Fdd.bind ctx.m (cond_fdd ctx a) (fun v ->
        if is_true ctx v then lt else cond_fdd ctx b)
  | _ -> unsupported "condition not expressible as field tests"

and negate ctx d =
  Fdd.bind ctx.m d (fun v -> bool_leaf ctx (not (is_true ctx v)))

(* ---------------- physical-table layout ---------------- *)

(* Each physical table gets a diagram and the id of its successor;
   [None] means fall off the end of the region.  Conditionals with
   non-trivial branches embed their successors in [Djump] leaves. *)
let rec layout ctx plans items ~first ~next_after =
  match items with
  | [] -> ()
  | it :: rest ->
    let sz = item_size it in
    let next = if rest = [] then next_after else Some (first + sz) in
    (match it with
    | ITable tbl -> plans := (first, table_fdd ctx tbl, next) :: !plans
    | ICond (cond, a, b) when is_simple a && is_simple b ->
      let branch = function
        | [] -> Fdd.leaf (dec_id ctx Dpass)
        | [ ITable tbl ] -> table_fdd ctx tbl
        | _ -> assert false
      in
      let fa = branch a and fb = branch b in
      let f =
        Fdd.bind ctx.m (cond_fdd ctx cond) (fun v ->
            if is_true ctx v then fa else fb)
      in
      plans := (first, f, next) :: !plans
    | ICond (cond, a, b) ->
      let a_start = first + 1 in
      let b_start = a_start + n_phys a in
      let target items' start = if items' = [] then next else Some start in
      let ja = Fdd.leaf (dec_id ctx (Djump (target a a_start))) in
      let jb = Fdd.leaf (dec_id ctx (Djump (target b b_start))) in
      let f =
        Fdd.bind ctx.m (cond_fdd ctx cond) (fun v ->
            if is_true ctx v then ja else jb)
      in
      plans := (first, f, None) :: !plans;
      layout ctx plans a ~first:a_start ~next_after:next;
      layout ctx plans b ~first:b_start ~next_after:next);
    layout ctx plans rest ~first:(first + sz) ~next_after

(* ---------------- flow extraction ---------------- *)

(* Walk the diagram hi-before-lo (so more-specific rows come out first),
   accumulating per-field (mask, value) constraints.  A test fully
   implied by the accumulated match takes only its hi branch; a
   contradicted one only its lo branch — this is where shadowed entries
   disappear.  The lo branch records no negative information: it relies
   on the hi rows outranking it, which row order guarantees. *)
let implied (env : env) (t : Fdd.test) : [ `True | `False | `Open ] =
  match SM.find_opt t.tfield env with
  | None -> `Open
  | Some (am, av) ->
    let overlap = Int64.logand am t.tmask in
    if not (Int64.equal (Int64.logand (Int64.logxor av t.tvalue) overlap) 0L)
    then `False
    else if Int64.equal (Int64.logand t.tmask (Int64.lognot am)) 0L then `True
    else `Open

let env_add (env : env) (t : Fdd.test) : env =
  let am, av =
    Option.value ~default:(0L, 0L) (SM.find_opt t.tfield env)
  in
  SM.add t.tfield (Int64.logor am t.tmask, Int64.logor av t.tvalue) env

(* Walk the diagram's rows in extraction order (hi before lo), calling
   [k env v] per non-undef leaf.  O(path depth) transient state. *)
let iter_rows (fdd : Fdd.t) (k : env -> int -> unit) : unit =
  let stack = ref [ (fdd, SM.empty) ] in
  let continue = ref true in
  while !continue do
    match !stack with
    | [] -> continue := false
    | (t, env) :: rest -> (
      stack := rest;
      match t with
      | Fdd.Leaf v -> if v <> 0 then k env v
      | Fdd.Node n -> (
        match implied env n.test with
        | `True -> stack := (n.hi, env) :: !stack
        | `False -> stack := (n.lo, env) :: !stack
        | `Open ->
          stack := (n.hi, env_add env n.test) :: (n.lo, env) :: !stack))
  done

(* One extracted row as flow ingredients: match list, action list,
   provenance cookie. *)
let row_payload ctx ~table_id ~next (env : env) (v : int) :
    Openflow.field_match list * Openflow.action list * string =
  let matches =
    SM.fold
      (fun f (m, v) acc ->
        { Openflow.mfield = f; mvalue = v; mmask = Some m } :: acc)
      env []
    |> List.rev
  in
  let actions, cookie =
    match dec_of ctx v with
    | Dpass ->
      ( (match next with Some t -> [ Openflow.Goto t ] | None -> []),
        Printf.sprintf "ctl%d/pass" table_id )
    | Djump tgt ->
      ( (match tgt with Some t -> [ Openflow.Goto t ] | None -> []),
        Printf.sprintf "ctl%d/branch:%s" table_id
          (match tgt with Some t -> string_of_int t | None -> "end") )
    | Dbool _ ->
      unsupported "internal: boolean decision escaped condition folding"
    | Dentry (tname, dentry) ->
      let aname, args =
        match dentry with
        | Some (e : P4.Entry.t) -> (e.action, e.args)
        | None -> (find_table_exn ctx.prog tname).default_action
      in
      let cookie =
        match dentry with
        | Some e -> Printf.sprintf "%s/%s" tname e.action
        | None -> Printf.sprintf "%s/default:%s" tname aname
      in
      (compile_action_body ~prog:ctx.prog ~env ~aname ~args ~next, cookie)
  in
  (matches, actions, cookie)

(* Priority minimisation: consecutive rows share a priority when they
   are pairwise disjoint, witnessed by a shared discriminator — a
   (field, mask) they all match with pairwise-distinct values.  The
   number of priority levels is the number of groups, not rules.
   Returns a stateful per-row classifier yielding the group index. *)
let group_tracker () : Openflow.field_match list -> int =
  let cur_disc : (string * int64 * (int64, unit) Hashtbl.t) option ref =
    ref None
  in
  let group_idx = ref (-1) in
  fun matches ->
    let joined =
      match !cur_disc with
      | None -> false
      | Some (f, m, seen) -> (
        match
          List.find_opt
            (fun (fm : Openflow.field_match) ->
              String.equal fm.mfield f
              &&
              match fm.mmask with
              | Some mm -> Int64.equal mm m
              | None -> false)
            matches
        with
        | Some fm when not (Hashtbl.mem seen fm.mvalue) ->
          Hashtbl.add seen fm.mvalue ();
          true
        | _ -> false)
    in
    if not joined then begin
      incr group_idx;
      match matches with
      | { Openflow.mfield; mvalue; mmask = Some m } :: _ ->
        let seen = Hashtbl.create 8 in
        Hashtbl.add seen mvalue ();
        cur_disc := Some (mfield, m, seen)
      | _ -> cur_disc := None
    end;
    !group_idx

let extract_plan ctx ~table_id ~next (fdd : Fdd.t)
    ~(emit : Openflow.flow -> unit) : unit =
  let rows = ref [] in
  iter_rows fdd (fun env v -> rows := (env, v) :: !rows);
  let rows = List.rev !rows in
  let compiled = List.map (fun (env, v) -> row_payload ctx ~table_id ~next env v) rows in
  let track = group_tracker () in
  let last_group = ref (-1) in
  let with_groups =
    List.map
      (fun (matches, actions, cookie) ->
        let g = track matches in
        last_group := g;
        (matches, actions, cookie, g))
      compiled
  in
  let n_groups = !last_group + 1 in
  (* Suffix merge: extraction specialises the table default per lo-path
     (e.g. [port=1 -> default] above the catch-all default row).  A row
     is redundant when every row below it — including the empty-match
     catch-all that ends every table — performs the identical action
     list: any packet it matched falls through to an equivalent row.
     One backward pass keeps this linear in the row count. *)
  let arr = Array.of_list with_groups in
  let n = Array.length arr in
  let keep = Array.make n true in
  if n > 0 then begin
    let _, last_actions, _, _ = arr.(n - 1) in
    let uniform = ref true in
    for i = n - 2 downto 0 do
      let _, actions, _, _ = arr.(i) in
      if !uniform && actions = last_actions then keep.(i) <- false
      else uniform := false
    done
  end;
  Array.iteri
    (fun i (matches, actions, cookie, g) ->
      if keep.(i) then
        emit
          {
            Openflow.table_id;
            priority = n_groups - 1 - g;
            matches;
            actions;
            cookie;
          })
    arr

(* The streaming twin of [extract_plan]: identical output, bounded
   memory.  Pass A walks the rows once computing the three global facts
   extraction needs — row count, group count, and the start of the
   trailing equal-actions run (the suffix merge drops everything in
   that run but its last row) — keeping only the previous row's action
   list live.  Pass B re-walks and emits.  Rows are compiled twice;
   nothing proportional to the row count is ever materialised. *)
let extract_plan_stream ctx ~table_id ~next (fdd : Fdd.t)
    ~(emit : Openflow.flow -> unit) : unit =
  let track = group_tracker () in
  let n_rows = ref 0 in
  let last_group = ref (-1) in
  let run_start = ref 0 in
  let prev_actions = ref None in
  iter_rows fdd (fun env v ->
      let matches, actions, _ = row_payload ctx ~table_id ~next env v in
      last_group := track matches;
      (match !prev_actions with
      | Some pa when pa = actions -> ()
      | _ -> run_start := !n_rows);
      prev_actions := Some actions;
      incr n_rows);
  let n = !n_rows in
  let n_groups = !last_group + 1 in
  let tail_start = !run_start in
  let track = group_tracker () in
  let i = ref 0 in
  iter_rows fdd (fun env v ->
      let matches, actions, cookie = row_payload ctx ~table_id ~next env v in
      let g = track matches in
      if !i < tail_start || !i = n - 1 then
        emit
          {
            Openflow.table_id;
            priority = n_groups - 1 - g;
            matches;
            actions;
            cookie;
          };
      incr i)

(** Compile [sw]'s program and installed entries through forwarding
    decision diagrams: per-table entry folding with shadowed-path
    elimination, [If] support (trivial branches fold into one physical
    table, larger ones become condition tables with [Goto] rows), and
    priorities assigned per disjointness group.  Ingress tables occupy
    [0, egress_start); egress tables follow and are run once per
    replicated copy by {!Eval}. *)
let prepare (sw : P4.Switch.t) =
  let prog = sw.P4.Switch.program in
  let ing = items_of prog prog.ingress in
  let eg = items_of prog prog.egress in
  let order = field_order [ ing; eg ] in
  let ctx =
    {
      prog;
      sw;
      m = Fdd.create ~order ();
      dec_ids = Hashtbl.create 64;
      dec_arr = Hashtbl.create 64;
      next_dec = 1;
    }
  in
  (ctx, ing, eg)

let compile (sw : P4.Switch.t) : Openflow.t =
  let ctx, ing, eg = prepare sw in
  let n_ing = n_phys ing and n_eg = n_phys eg in
  let plans = ref [] in
  layout ctx plans ing ~first:0 ~next_after:None;
  layout ctx plans eg ~first:n_ing ~next_after:None;
  let out = Openflow.create () in
  List.iter
    (fun (tid, fdd, next) ->
      extract_plan ctx ~table_id:tid ~next fdd ~emit:(Openflow.add_flow out))
    (List.sort (fun (a, _, _) (b, _, _) -> Int.compare a b) !plans);
  out.n_tables <- max out.n_tables (n_ing + n_eg);
  if n_eg > 0 then out.egress_start <- Some n_ing;
  out

(** Fold over the compiled flows without materialising them: diagrams
    are built as in {!compile}, then extracted via the two-pass
    streaming path, so a 10^6-entry table compiles in memory bounded by
    the diagram itself (rows are never collected).  Flow order and
    content are identical to {!compile}. *)
let fold_flows (sw : P4.Switch.t) ~(init : 'a) ~(f : 'a -> Openflow.flow -> 'a)
    : 'a =
  let ctx, ing, eg = prepare sw in
  let n_ing = n_phys ing in
  let plans = ref [] in
  layout ctx plans ing ~first:0 ~next_after:None;
  layout ctx plans eg ~first:n_ing ~next_after:None;
  let acc = ref init in
  List.iter
    (fun (tid, fdd, next) ->
      extract_plan_stream ctx ~table_id:tid ~next fdd
        ~emit:(fun fl -> acc := f !acc fl))
    (List.sort (fun (a, _, _) (b, _, _) -> Int.compare a b) !plans);
  !acc

(* ---------------- incremental compilation state ---------------- *)

module State = struct
  (* One extracted row of a single-LPM plan, cached across recompiles.
     Content (matches/actions/cookie) depends only on the entry and the
     plan's successor; [lr_flow] is the flow currently emitted for the
     row ([None] while suppressed by shadowing or the suffix merge). *)
  type lrow = {
    lr_matches : Openflow.field_match list;
    lr_actions : Openflow.action list;
    lr_cookie : string;
    lr_disc : int64 option;  (* the single match's mask; None = matchless *)
    lr_leaf : Fdd.t;  (* interned decision leaf, so spine rebuilds skip
                         the structural re-hash of the entry *)
    mutable lr_flow : Openflow.flow option;
  }

  (* Incremental state of a single-LPM plan: entries in the sorted fold
     order (coarsest first), the fold's accumulator at every index —
     each a shared subdiagram of the full spine, so a splice at index k
     reuses [l_accs.(k-1)] unchanged — and the cached rows.

     The spine is maintained lazily: flow deltas never read it, so
     churn only records the low-water mark [l_dirty] and the suffix is
     re-unioned on demand ([force_spine]) when the diagram itself is
     wanted (differential comparison, compaction roots).

     [l_tail_hi], [l_break] and [l_last] cache the suffix-merge
     geometry of the last full rescan, letting a single-entry edit that
     provably preserves the group structure skip the O(rows) rescan:
     [l_tail_hi] is the entries index of the finest row merged into the
     tail (-1 when the tail is the bottom row alone), [l_break] the
     index of the emitted row seq-adjacent to the tail — the row whose
     removal could extend the merge (-2 when every row is merged) —
     and [l_last] the bottom row's actions. *)
  type lstate = {
    l_tname : string;
    l_schema : (P4.Program.fref * P4.Program.match_kind * int) list;
    l_tid : int;
    l_next : int option;
    l_dflt : Fdd.t;
    l_dflt_row : lrow;
    mutable l_entries : (Fdd.test option * P4.Entry.t) array;
    mutable l_accs : Fdd.t array;
    mutable l_rows : lrow array;
    mutable l_dirty : int;  (* spine valid below this index; max_int = clean *)
    mutable l_tail_hi : int;
    mutable l_break : int;
    mutable l_last : Openflow.action list;
  }

  type pkind =
    | Plpm of lstate  (* the plan diagram is exactly this LPM table *)
    | Pdyn of (unit -> Fdd.t)  (* refold from the current entry mirror *)
    | Pstatic  (* condition jump table: entries never reach it *)

  type plan = {
    p_id : int;
    p_next : int option;
    p_kind : pkind;
    mutable p_fdd : Fdd.t;
    mutable p_flows : Openflow.flow list;
        (* extraction order; unused for Plpm (rows cache their flows) *)
  }

  (* Canonical mirror of one table's installed entries in rank order,
     maintained under the same replace-by-match semantics as
     [P4.Switch.insert_entry]/[delete_entry]. *)
  type eholder = {
    eh_tbl : P4.Program.table;
    eh_schema : (P4.Program.fref * P4.Program.match_kind * int) list;
    mutable eh_ranked : P4.Entry.t list;
  }

  type t = {
    st_ctx : ctx;
    st_plans : plan array;  (* indexed by physical table id *)
    st_holders : (string, eholder) Hashtbl.t;
    st_members : (string, int list) Hashtbl.t;  (* table -> plan ids *)
    st_nphys : int;
    st_egress : int option;
    st_threshold : int;
    mutable st_compactions : int;
    mutable st_swept : int;
  }

  let mk_lrow ctx ~tname ~next (t : Fdd.test option) (e : P4.Entry.t) : lrow =
    let leaf = Fdd.leaf (dec_id ctx (Dentry (tname, Some e))) in
    match t with
    | None ->
      {
        lr_matches = [];
        lr_actions =
          compile_action_body ~prog:ctx.prog ~env:SM.empty ~aname:e.action
            ~args:e.args ~next;
        lr_cookie = Printf.sprintf "%s/%s" tname e.action;
        lr_disc = None;
        lr_leaf = leaf;
        lr_flow = None;
      }
    | Some t ->
      let env = SM.singleton t.Fdd.tfield (t.Fdd.tmask, t.Fdd.tvalue) in
      {
        lr_matches =
          [ { Openflow.mfield = t.Fdd.tfield; mvalue = t.Fdd.tvalue;
              mmask = Some t.Fdd.tmask } ];
        lr_actions =
          compile_action_body ~prog:ctx.prog ~env ~aname:e.action ~args:e.args
            ~next;
        lr_cookie = Printf.sprintf "%s/%s" tname e.action;
        lr_disc = Some t.Fdd.tmask;
        lr_leaf = leaf;
        lr_flow = None;
      }

  let mk_dflt_row ctx (tbl : P4.Program.table) ~next ~leaf : lrow =
    let aname, args = tbl.default_action in
    {
      lr_matches = [];
      lr_actions =
        compile_action_body ~prog:ctx.prog ~env:SM.empty ~aname ~args ~next;
      lr_cookie = Printf.sprintf "%s/default:%s" tbl.tname aname;
      lr_disc = None;
      lr_leaf = leaf;
      lr_flow = None;
    }

  (* Recompute groups, the suffix-merge tail, and per-row priorities
     over the current spine, emitting the difference against each
     row's cached flow.  Analytic twin of [extract_plan] on the spine
     shape: one row per non-shadowed entry, finest first, then the
     matchless bottom row; groups are maximal equal-mask runs.  O(rows)
     integer work plus flow construction only for rows that change. *)
  let lpm_rescan ctx (ls : lstate) : Openflow.flow_delta =
    let n = Array.length ls.l_entries in
    let adds = ref [] and mods = ref [] and dels = ref [] in
    let clear (r : lrow) =
      match r.lr_flow with
      | Some f ->
        dels := f :: !dels;
        r.lr_flow <- None
      | None -> ()
    in
    let seq = Array.make (n + 1) ls.l_dflt_row in
    let seq_ei = Array.make (n + 1) (-1) in  (* entries index per seq slot *)
    let k = ref 0 in
    let has_zero =
      n > 0 && match ls.l_entries.(0) with None, _ -> true | _ -> false
    in
    for i = n - 1 downto 0 do
      let t, _ = ls.l_entries.(i) in
      let r = ls.l_rows.(i) in
      let shadowed =
        (* an equal-test successor wins the whole test: no row *)
        i + 1 < n
        && (match (t, fst ls.l_entries.(i + 1)) with
           | None, None -> true
           | Some a, Some b -> Fdd.test_compare ctx.m a b = 0
           | _ -> false)
      in
      if shadowed then clear r
      else begin
        seq.(!k) <- r;
        seq_ei.(!k) <- i;
        incr k
      end
    done;
    if has_zero then clear ls.l_dflt_row
    else begin
      seq.(!k) <- ls.l_dflt_row;
      incr k
    end;
    let k = !k in
    let gs = Array.make k 0 in
    let g = ref (-1) in
    let cur = ref None in
    for i = 0 to k - 1 do
      let joined =
        (* same-mask runs have pairwise-distinct values (equal tests
           merged above), so sharing the discriminator mask suffices *)
        match (!cur, seq.(i).lr_disc) with
        | Some m, Some rm -> Int64.equal m rm
        | _ -> false
      in
      if not joined then begin
        incr g;
        cur := seq.(i).lr_disc
      end;
      gs.(i) <- !g
    done;
    let n_groups = !g + 1 in
    let last_actions = seq.(k - 1).lr_actions in
    let tail_start = ref (k - 1) in
    (try
       for i = k - 2 downto 0 do
         if seq.(i).lr_actions = last_actions then tail_start := i
         else raise Exit
       done
     with Exit -> ());
    ls.l_last <- last_actions;
    ls.l_tail_hi <- seq_ei.(!tail_start);
    ls.l_break <- (if !tail_start > 0 then seq_ei.(!tail_start - 1) else -2);
    for i = 0 to k - 1 do
      let r = seq.(i) in
      if i < !tail_start || i = k - 1 then begin
        let prio = n_groups - 1 - gs.(i) in
        match r.lr_flow with
        | Some f when f.Openflow.priority = prio -> ()
        | Some f ->
          let nf = { f with Openflow.priority = prio } in
          mods := (f, nf) :: !mods;
          r.lr_flow <- Some nf
        | None ->
          let nf =
            {
              Openflow.table_id = ls.l_tid;
              priority = prio;
              matches = r.lr_matches;
              actions = r.lr_actions;
              cookie = r.lr_cookie;
            }
          in
          adds := nf :: !adds;
          r.lr_flow <- Some nf
      end
      else clear r
    done;
    {
      Openflow.fd_add = List.rev !adds;
      fd_mod = List.rev !mods;
      fd_del = List.rev !dels;
    }

  let arr_remove arr i =
    let n = Array.length arr in
    if n = 1 then [||]
    else begin
      let out = Array.make (n - 1) arr.(0) in
      Array.blit arr 0 out 0 i;
      Array.blit arr (i + 1) out i (n - i - 1);
      out
    end

  let arr_insert arr i x =
    let n = Array.length arr in
    let out = Array.make (n + 1) x in
    Array.blit arr 0 out 0 i;
    Array.blit arr i out (i + 1) (n - i);
    out

  (* First index whose entry sorts at-or-after [key] in fold order
     (total: zero only for same-match entries). *)
  let lpm_search ctx (ls : lstate) key =
    let lo = ref 0 and hi = ref (Array.length ls.l_entries) in
    while !lo < !hi do
      let mid = (!lo + !hi) / 2 in
      if lpm_fold_order ctx key ls.l_entries.(mid) > 0 then lo := mid + 1
      else hi := mid
    done;
    !lo

  let touch (ls : lstate) i = if i < ls.l_dirty then ls.l_dirty <- i

  (* Rebuild the stale spine suffix — every accumulator at or above the
     low-water mark, re-unioned onto the untouched shared accumulator
     below it — and republish the plan diagram.  Deferred off the churn
     path entirely: only diagram readers pay for it, and a burst of
     deltas between reads costs one rebuild, not one per delta. *)
  let force_spine ctx (p : plan) (ls : lstate) =
    if ls.l_dirty < max_int then begin
      let n = Array.length ls.l_entries in
      for i = ls.l_dirty to n - 1 do
        let t, _ = ls.l_entries.(i) in
        let prev = if i = 0 then ls.l_dflt else ls.l_accs.(i - 1) in
        ls.l_accs.(i) <- lpm_push ctx t ls.l_rows.(i).lr_leaf prev
      done;
      p.p_fdd <- (if n = 0 then ls.l_dflt else ls.l_accs.(n - 1));
      ls.l_dirty <- max_int
    end

  (* O(log n + edit) fast path for a single insert or remove that
     provably changes no other row: the touched run must persist (a
     same-mask neighbour remains, so group numbering and every other
     priority are untouched), no equal-test shadowing may be involved,
     and the edit must stay strictly finer than the suffix-merge tail
     without being able to extend it.  Returns [None] — mutating
     nothing — when any guard fails, and the caller falls back to the
     full rescan. *)
  let lpm_fast_one ctx (ls : lstate) ~(remove : bool) (e : P4.Entry.t) :
      Openflow.flow_delta option =
    let t = lpm_key ctx ls.l_schema e in
    match t with
    | None -> None  (* /0 rows interact with the default row: rescan *)
    | Some tt ->
      let mask = tt.Fdd.tmask in
      let key = (t, e) in
      let i = lpm_search ctx ls key in
      let n = Array.length ls.l_entries in
      let present = i < n && lpm_fold_order ctx key ls.l_entries.(i) = 0 in
      let eqt j =
        j >= 0 && j < n
        && (match fst ls.l_entries.(j) with
           | Some b -> Fdd.test_compare ctx.m tt b = 0
           | None -> false)
      in
      let same_mask j =
        j >= 0 && j < n
        && (match ls.l_rows.(j).lr_disc with
           | Some m -> Int64.equal m mask
           | None -> false)
      in
      (* an emitted member of the run carries the group's priority;
         shadowed or merged members are skipped *)
      let rec run_prio j step =
        if not (same_mask j) then None
        else
          match ls.l_rows.(j).lr_flow with
          | Some f -> Some f.Openflow.priority
          | None -> run_prio (j + step) step
      in
      if remove then
        if not present then Some Openflow.delta_empty
        else begin
          let r = ls.l_rows.(i) in
          let eq_prev = eqt (i - 1) and eq_next = eqt (i + 1) in
          let splice () =
            ls.l_entries <- arr_remove ls.l_entries i;
            ls.l_rows <- arr_remove ls.l_rows i;
            ls.l_accs <- arr_remove ls.l_accs i;
            touch ls i
          in
          if eq_next && (not eq_prev) && r.lr_flow = None then begin
            (* shadowed by its equal-test successor: invisible *)
            splice ();
            if i < ls.l_break then ls.l_break <- ls.l_break - 1;
            if i <= ls.l_tail_hi then ls.l_tail_hi <- ls.l_tail_hi - 1;
            Some Openflow.delta_empty
          end
          else
            match r.lr_flow with
            | Some f
              when (not eq_prev) && (not eq_next)
                   && i > ls.l_tail_hi
                   && i <> ls.l_break
                   && (same_mask (i - 1) || same_mask (i + 1)) ->
              splice ();
              Some { Openflow.delta_empty with Openflow.fd_del = [ f ] }
            | _ -> None
        end
      else if present then begin
        (* same-match entry installed: replace in place, mirroring
           [Switch.insert_entry] — position, priority and shadowing
           state are all unchanged, only the content can differ *)
        let old = ls.l_rows.(i) in
        let eq_next = eqt (i + 1) in
        match old.lr_flow with
        | None when eq_next ->
          let row = mk_lrow ctx ~tname:ls.l_tname ~next:ls.l_next t e in
          ls.l_entries.(i) <- (t, e);
          ls.l_rows.(i) <- row;
          touch ls i;
          Some Openflow.delta_empty
        | Some f when i > ls.l_tail_hi ->
          let row = mk_lrow ctx ~tname:ls.l_tname ~next:ls.l_next t e in
          if i = ls.l_break && row.lr_actions = ls.l_last then None
          else begin
            ls.l_entries.(i) <- (t, e);
            ls.l_rows.(i) <- row;
            touch ls i;
            if
              f.Openflow.actions = row.lr_actions
              && f.Openflow.cookie = row.lr_cookie
            then begin
              row.lr_flow <- Some f;
              Some Openflow.delta_empty
            end
            else begin
              let nf =
                { f with Openflow.actions = row.lr_actions;
                  cookie = row.lr_cookie }
              in
              row.lr_flow <- Some nf;
              Some { Openflow.delta_empty with Openflow.fd_mod = [ (f, nf) ] }
            end
          end
        | _ -> None
      end
      else begin
        let eq_prev = eqt (i - 1) and eq_at = eqt i in
        if
          (not eq_prev) && (not eq_at)
          && i > ls.l_tail_hi
          && (same_mask (i - 1) || same_mask i)
        then begin
          let row = mk_lrow ctx ~tname:ls.l_tname ~next:ls.l_next t e in
          if row.lr_actions = ls.l_last then None
          else
            match
              (match run_prio (i - 1) (-1) with
              | Some p -> Some p
              | None -> run_prio i 1)
            with
            | None -> None
            | Some prio ->
              ls.l_entries <- arr_insert ls.l_entries i (t, e);
              ls.l_rows <- arr_insert ls.l_rows i row;
              ls.l_accs <- arr_insert ls.l_accs i Fdd.undef;
              touch ls i;
              if ls.l_break = -2 || i <= ls.l_break then ls.l_break <- i;
              let nf =
                {
                  Openflow.table_id = ls.l_tid;
                  priority = prio;
                  matches = row.lr_matches;
                  actions = row.lr_actions;
                  cookie = row.lr_cookie;
                }
              in
              row.lr_flow <- Some nf;
              Some { Openflow.delta_empty with Openflow.fd_add = [ nf ] }
        end
        else None
      end

  let lpm_apply_slow ctx (ls : lstate) (ops : (P4.Entry.t * int) list) :
      Openflow.flow_delta =
    let pre = ref [] in  (* flows of rows removed or replaced outright *)
    let drop_row (r : lrow) =
      match r.lr_flow with Some f -> pre := f :: !pre | None -> ()
    in
    (* ops run in transaction order — a remove after an add of the same
       match must win, exactly as on the switch *)
    List.iter
      (fun ((e : P4.Entry.t), w) ->
        if w < 0 then begin
          let key = (lpm_key ctx ls.l_schema e, e) in
          let i = lpm_search ctx ls key in
          (* absent entries are a silent no-op, like
             [Switch.delete_entry] *)
          if
            i < Array.length ls.l_entries
            && lpm_fold_order ctx key ls.l_entries.(i) = 0
          then begin
            drop_row ls.l_rows.(i);
            ls.l_entries <- arr_remove ls.l_entries i;
            ls.l_rows <- arr_remove ls.l_rows i;
            ls.l_accs <- arr_remove ls.l_accs i;
            touch ls i
          end
        end
        else if w > 0 then begin
          let t = lpm_key ctx ls.l_schema e in
          let key = (t, e) in
          let row = mk_lrow ctx ~tname:ls.l_tname ~next:ls.l_next t e in
          let i = lpm_search ctx ls key in
          if
            i < Array.length ls.l_entries
            && lpm_fold_order ctx key ls.l_entries.(i) = 0
          then begin
            (* same-match entry installed: replace in place, mirroring
               [Switch.insert_entry] *)
            drop_row ls.l_rows.(i);
            ls.l_entries.(i) <- (t, e);
            ls.l_rows.(i) <- row
          end
          else begin
            ls.l_entries <- arr_insert ls.l_entries i (t, e);
            ls.l_rows <- arr_insert ls.l_rows i row;
            ls.l_accs <- arr_insert ls.l_accs i Fdd.undef
          end;
          touch ls i
        end)
      ops;
    let d = lpm_rescan ctx ls in
    Openflow.pair_modifies
      { d with Openflow.fd_del = List.rev !pre @ d.Openflow.fd_del }

  let lpm_apply ctx (ls : lstate) (ops : (P4.Entry.t * int) list) :
      Openflow.flow_delta =
    match ops with
    | [ (e, w) ] when w <> 0 -> (
      match lpm_fast_one ctx ls ~remove:(w < 0) e with
      | Some d -> d
      | None -> lpm_apply_slow ctx ls ops)
    | _ -> lpm_apply_slow ctx ls ops

  let rebuild_plan st (p : plan) : Openflow.flow_delta =
    match p.p_kind with
    | Plpm _ | Pstatic -> assert false
    | Pdyn rebuild ->
      let fdd = rebuild () in
      p.p_fdd <- fdd;
      let acc = ref [] in
      extract_plan st.st_ctx ~table_id:p.p_id ~next:p.p_next fdd
        ~emit:(fun f -> acc := f :: !acc);
      let nf = List.rev !acc in
      let d = Openflow.diff ~old_flows:p.p_flows ~new_flows:nf in
      p.p_flows <- nf;
      d

  let holder_remove (h : eholder) (e : P4.Entry.t) =
    h.eh_ranked <-
      List.filter (fun x -> not (P4.Entry.same_match x e)) h.eh_ranked

  let holder_insert (h : eholder) (e : P4.Entry.t) =
    let rest =
      List.filter (fun x -> not (P4.Entry.same_match x e)) h.eh_ranked
    in
    let rec ins = function
      | [] -> [ e ]
      | x :: tl ->
        if P4.Entry.rank_compare e x > 0 then e :: x :: tl else x :: ins tl
    in
    h.eh_ranked <- ins rest

  let holder ctx holders (tbl : P4.Program.table) =
    match Hashtbl.find_opt holders tbl.P4.Program.tname with
    | Some h -> h
    | None ->
      let h =
        {
          eh_tbl = tbl;
          eh_schema = table_schema_exn ctx tbl;
          eh_ranked = P4.Switch.table_entries_ranked ctx.sw tbl.tname;
        }
      in
      Hashtbl.add holders tbl.tname h;
      h

  let member members tname pid =
    let cur = Option.value ~default:[] (Hashtbl.find_opt members tname) in
    Hashtbl.replace members tname (cur @ [ pid ])

  (* Mirror of [layout]: same physical table numbering, but each plan
     records how to recompute its diagram from the entry mirrors. *)
  let rec layout_plans ctx holders members plans items ~first ~next_after =
    match items with
    | [] -> ()
    | it :: rest ->
      let sz = item_size it in
      let next = if rest = [] then next_after else Some (first + sz) in
      (match it with
      | ITable tbl when is_single_lpm tbl ->
        let h = holder ctx holders tbl in
        let dflt = Fdd.leaf (dec_id ctx (Dentry (tbl.tname, None))) in
        let keyed =
          List.sort (lpm_fold_order ctx)
            (List.map (fun e -> (lpm_key ctx h.eh_schema e, e)) h.eh_ranked)
        in
        let entries = Array.of_list keyed in
        let n = Array.length entries in
        let rows =
          Array.map
            (fun (t, e) -> mk_lrow ctx ~tname:tbl.tname ~next t e)
            entries
        in
        let accs = Array.make n Fdd.undef in
        for i = 0 to n - 1 do
          let t, _ = entries.(i) in
          let prev = if i = 0 then dflt else accs.(i - 1) in
          accs.(i) <- lpm_push ctx t rows.(i).lr_leaf prev
        done;
        let ls =
          {
            l_tname = tbl.tname;
            l_schema = h.eh_schema;
            l_tid = first;
            l_next = next;
            l_dflt = dflt;
            l_dflt_row = mk_dflt_row ctx tbl ~next ~leaf:dflt;
            l_entries = entries;
            l_accs = accs;
            l_rows = rows;
            l_dirty = max_int;
            l_tail_hi = -1;
            l_break = -2;
            l_last = [];
          }
        in
        let fdd = if n = 0 then dflt else accs.(n - 1) in
        plans :=
          { p_id = first; p_next = next; p_kind = Plpm ls; p_fdd = fdd;
            p_flows = [] }
          :: !plans;
        member members tbl.tname first
      | ITable tbl ->
        let h = holder ctx holders tbl in
        let rebuild () =
          table_fdd_of_entries ctx h.eh_tbl h.eh_schema h.eh_ranked
        in
        plans :=
          { p_id = first; p_next = next; p_kind = Pdyn rebuild;
            p_fdd = rebuild (); p_flows = [] }
          :: !plans;
        member members tbl.tname first
      | ICond (cond, a, b) when is_simple a && is_simple b ->
        let branch = function
          | [] -> (None, fun () -> Fdd.leaf (dec_id ctx Dpass))
          | [ ITable tbl ] ->
            let h = holder ctx holders tbl in
            ( Some tbl.P4.Program.tname,
              fun () ->
                table_fdd_of_entries ctx h.eh_tbl h.eh_schema h.eh_ranked )
          | _ -> assert false
        in
        let na, fa = branch a and nb, fb = branch b in
        let rebuild () =
          let da = fa () and db = fb () in
          Fdd.bind ctx.m (cond_fdd ctx cond) (fun v ->
              if is_true ctx v then da else db)
        in
        plans :=
          { p_id = first; p_next = next; p_kind = Pdyn rebuild;
            p_fdd = rebuild (); p_flows = [] }
          :: !plans;
        Option.iter (fun tn -> member members tn first) na;
        Option.iter (fun tn -> member members tn first) nb
      | ICond (cond, a, b) ->
        let a_start = first + 1 in
        let b_start = a_start + n_phys a in
        let target items' start = if items' = [] then next else Some start in
        let ja = Fdd.leaf (dec_id ctx (Djump (target a a_start))) in
        let jb = Fdd.leaf (dec_id ctx (Djump (target b b_start))) in
        let f =
          Fdd.bind ctx.m (cond_fdd ctx cond) (fun v ->
              if is_true ctx v then ja else jb)
        in
        plans :=
          { p_id = first; p_next = None; p_kind = Pstatic; p_fdd = f;
            p_flows = [] }
          :: !plans;
        layout_plans ctx holders members plans a ~first:a_start
          ~next_after:next;
        layout_plans ctx holders members plans b ~first:b_start
          ~next_after:next);
      layout_plans ctx holders members plans rest ~first:(first + sz)
        ~next_after

  let create ?(compact_threshold = 1_000_000) (sw : P4.Switch.t) : t =
    let ctx, ing, eg = prepare sw in
    let n_ing = n_phys ing and n_eg = n_phys eg in
    let holders = Hashtbl.create 8 in
    let members = Hashtbl.create 8 in
    let plans = ref [] in
    layout_plans ctx holders members plans ing ~first:0 ~next_after:None;
    layout_plans ctx holders members plans eg ~first:n_ing ~next_after:None;
    let plan_arr =
      Array.of_list
        (List.sort (fun a b -> Int.compare a.p_id b.p_id) !plans)
    in
    Array.iter
      (fun p ->
        match p.p_kind with
        | Plpm ls ->
          (* the initial rescan installs every row's flow; the delta —
             all adds — is the full table and is discarded *)
          ignore (lpm_rescan ctx ls)
        | Pdyn _ | Pstatic ->
          let acc = ref [] in
          extract_plan ctx ~table_id:p.p_id ~next:p.p_next p.p_fdd
            ~emit:(fun f -> acc := f :: !acc);
          p.p_flows <- List.rev !acc)
      plan_arr;
    {
      st_ctx = ctx;
      st_plans = plan_arr;
      st_holders = holders;
      st_members = members;
      st_nphys = n_ing + n_eg;
      st_egress = (if n_eg > 0 then Some n_ing else None);
      st_threshold = compact_threshold;
      st_compactions = 0;
      st_swept = 0;
    }

  let node_count st = Fdd.node_count st.st_ctx.m
  let compactions st = st.st_compactions
  let swept st = st.st_swept

  let force_spines (st : t) =
    Array.iter
      (fun p ->
        match p.p_kind with
        | Plpm ls -> force_spine st.st_ctx p ls
        | Pdyn _ | Pstatic -> ())
      st.st_plans

  let compact_now (st : t) =
    (* roots must reflect the current entries, not a stale spine, so
       the sweep keeps exactly the live diagram *)
    force_spines st;
    let roots =
      Array.to_list (Array.map (fun p -> p.p_fdd) st.st_plans)
    in
    st.st_swept <- st.st_swept + Fdd.compact st.st_ctx.m ~roots;
    (* sweep decisions unreachable from any live leaf; cached default
       leaves must survive even while a /0 entry hides them *)
    let live = Hashtbl.create 256 in
    List.iter
      (fun r -> List.iter (fun v -> Hashtbl.replace live v ()) (Fdd.leaves r))
      roots;
    Array.iter
      (fun p ->
        match p.p_kind with
        | Plpm ls -> (
          match ls.l_dflt with
          | Fdd.Leaf v -> Hashtbl.replace live v ()
          | Fdd.Node _ -> ())
        | Pdyn _ | Pstatic -> ())
      st.st_plans;
    let dead =
      Hashtbl.fold
        (fun d i acc -> if Hashtbl.mem live i then acc else (d, i) :: acc)
        st.st_ctx.dec_ids []
    in
    List.iter
      (fun (d, i) ->
        Hashtbl.remove st.st_ctx.dec_ids d;
        Hashtbl.remove st.st_ctx.dec_arr i)
      dead;
    st.st_compactions <- st.st_compactions + 1

  let maybe_compact st =
    if Fdd.node_count st.st_ctx.m > st.st_threshold then compact_now st

  let apply_delta (st : t)
      (deltas : (string * (P4.Entry.t * int) list) list) :
      Openflow.flow_delta =
    let out = ref Openflow.delta_empty in
    let dirty = Hashtbl.create 4 in
    List.iter
      (fun (tname, ops) ->
        if ops <> [] then begin
          let h =
            match Hashtbl.find_opt st.st_holders tname with
            | Some h -> h
            | None -> invalid_arg ("Compile.State: unknown table " ^ tname)
          in
          let pids =
            Option.value ~default:[] (Hashtbl.find_opt st.st_members tname)
          in
          (* the ranked mirror only feeds [Pdyn] refolds; [Plpm] plans
             keep their own sorted arrays, so a pure-LPM table skips
             the O(entries) list maintenance entirely.  Ops run in
             transaction order: a remove after an add of the same match
             wins, exactly as on the switch. *)
          if
            List.exists
              (fun pid ->
                match st.st_plans.(pid).p_kind with
                | Pdyn _ -> true
                | Plpm _ | Pstatic -> false)
              pids
          then
            List.iter
              (fun (e, w) ->
                if w < 0 then holder_remove h e
                else if w > 0 then holder_insert h e)
              ops;
          List.iter
            (fun pid ->
              let p = st.st_plans.(pid) in
              match p.p_kind with
              | Plpm ls ->
                out :=
                  Openflow.delta_union !out (lpm_apply st.st_ctx ls ops)
              | Pdyn _ -> Hashtbl.replace dirty pid ()
              | Pstatic -> ())
            pids
        end)
      deltas;
    let pids =
      Hashtbl.fold (fun pid () acc -> pid :: acc) dirty []
      |> List.sort Int.compare
    in
    List.iter
      (fun pid ->
        out := Openflow.delta_union !out (rebuild_plan st st.st_plans.(pid)))
      pids;
    maybe_compact st;
    !out

  let flows (st : t) : Openflow.t =
    let out = Openflow.create () in
    Array.iter
      (fun p ->
        match p.p_kind with
        | Plpm ls ->
          (* emit in extraction order so dumps are byte-stable against
             from-scratch compilation *)
          let emit (r : lrow) =
            match r.lr_flow with
            | Some f -> Openflow.add_flow out f
            | None -> ()
          in
          for i = Array.length ls.l_entries - 1 downto 0 do
            emit ls.l_rows.(i)
          done;
          emit ls.l_dflt_row
        | Pdyn _ | Pstatic -> List.iter (Openflow.add_flow out) p.p_flows)
      st.st_plans;
    out.Openflow.n_tables <- max out.Openflow.n_tables st.st_nphys;
    out.Openflow.egress_start <- st.st_egress;
    out

  let diagrams (st : t) : (int * Fdd.t) list =
    force_spines st;
    Array.to_list (Array.map (fun p -> (p.p_id, p.p_fdd)) st.st_plans)

  (* Leaf decision ids are interned in first-use order, so they differ
     between a long-lived state and a fresh compile of the same entries.
     Rendering spells each leaf out as its decision, giving a
     representation that is byte-comparable across states. *)
  let decision_label ctx (v : int) : string =
    if v = 0 then "undef"
    else
      match dec_of ctx v with
      | Dpass -> "pass"
      | Djump (Some t) -> Printf.sprintf "jump:%d" t
      | Djump None -> "jump:end"
      | Dbool b -> Printf.sprintf "bool:%b" b
      | Dentry (tname, Some e) ->
        Printf.sprintf "%s:%s" tname (P4.Entry.to_string e)
      | Dentry (tname, None) -> Printf.sprintf "%s:default" tname

  let render_diagram ctx (fdd : Fdd.t) : string =
    let buf = Buffer.create 256 in
    (* explicit stack: lo spines are as long as the entry count *)
    let stack = ref [ (fdd, 0) ] in
    let continue = ref true in
    while !continue do
      match !stack with
      | [] -> continue := false
      | (t, depth) :: rest -> (
        stack := rest;
        let indent = String.make (2 * depth) ' ' in
        match t with
        | Fdd.Leaf v ->
          Buffer.add_string buf
            (Printf.sprintf "%s[%s]\n" indent (decision_label ctx v))
        | Fdd.Node n ->
          Buffer.add_string buf
            (Printf.sprintf "%s%s?\n" indent (Fdd.test_to_string n.test));
          stack := (n.hi, depth + 1) :: (n.lo, depth + 1) :: !stack)
    done;
    Buffer.contents buf

  let render (st : t) : (int * string) list =
    force_spines st;
    Array.to_list
      (Array.map (fun p -> (p.p_id, render_diagram st.st_ctx p.p_fdd))
         st.st_plans)
end
