(* The p4c-of analog: compile a mini-P4 program plus its current table
   entries into an OpenFlow flow pipeline.

   Two backends share the action translator:

   - [compile] (the default) builds one forwarding decision diagram per
     physical table — folding a table's rank-sorted entries, and [If]
     control flow whose branches are trivial, into a single ordered
     diagram — then extracts flows from the diagram.  Extraction prunes
     paths whose tests are implied or contradicted by the accumulated
     match, so fully-shadowed entries emit nothing, and assigns
     priorities per disjointness group rather than per rule.  [If]
     with non-trivial branches becomes a condition table whose rows
     [Goto] the branch's first table.

   - [compile_naive] is the historical per-entry translator: one flow
     per entry in rank order, no conditionals.  It is kept as the
     reference point for flow-count and compile-time comparisons.

   Actions compile as:

     Forward e    -> set reg.egress_spec/reg.has_dest
     Multicast e  -> set reg.mcast_grp
     Drop         -> set reg.dropped (no goto)
     EmitDigest d -> controller(d)
     Assign       -> set_field / copy_field / add (width-masked like the
                     interpreter's write_ref)
     SetValid     -> push_vlan (vlan header only), SetInvalid -> pop_vlan

   Expressions resolve to constants when the match path pins every bit
   they read (an FDD row knows the matched field values); otherwise a
   field-to-field [CopyField] or increment [AddConst] is emitted, and
   anything richer is [Unsupported].

   One documented semantic difference survives from the old compiler: a
   dropped packet stops at the dropping table instead of traversing the
   rest of the pipeline, so digests/counters after a drop are not
   emitted.  Forwarding verdicts agree because drops are sticky. *)

exception Unsupported of string

let unsupported fmt = Format.kasprintf (fun s -> raise (Unsupported s)) fmt

module SM = Map.Make (String)

(* The linear sequence of tables applied by a control. *)
let rec table_sequence (c : P4.Program.control) : string list =
  match c with
  | P4.Program.Nop -> []
  | P4.Program.Seq (a, b) -> table_sequence a @ table_sequence b
  | P4.Program.ApplyTable t -> [ t ]
  | P4.Program.If _ -> unsupported "conditional control flow"

let ref_name (r : P4.Program.fref) =
  match r with
  | P4.Program.Field (h, f) -> h ^ "." ^ f
  | P4.Program.Meta m -> "meta." ^ m

let valid_field h = "valid." ^ h

let mask_w w v =
  if w >= 64 then v else Int64.logand v (Int64.sub (Int64.shift_left 1L w) 1L)

let full_mask w = if w >= 64 then -1L else Int64.sub (Int64.shift_left 1L w) 1L

let ref_width_exn prog r =
  match P4.Program.ref_width prog r with
  | Ok w -> w
  | Error e -> unsupported "%s" e

let find_table_exn prog tname =
  match P4.Program.find_table prog tname with
  | Some t -> t
  | None -> unsupported "unknown table %s" tname

(* ---------------- action translation ---------------- *)

(* [env] is what the match path pins: field name -> (mask, value) with
   value canonical under the mask.  A field read resolves to a constant
   only when the path pins its full width. *)
type env = (int64 * int64) SM.t

let binop_value (op : P4.Program.binop) va vb =
  let bool_of c = if c then 1L else 0L in
  match op with
  | P4.Program.Add -> Int64.add va vb
  | P4.Program.Sub -> Int64.sub va vb
  | P4.Program.And -> Int64.logand va vb
  | P4.Program.Or -> Int64.logor va vb
  | P4.Program.Xor -> Int64.logxor va vb
  | P4.Program.Shl -> Int64.shift_left va (Int64.to_int vb)
  | P4.Program.Shr -> Int64.shift_right_logical va (Int64.to_int vb)
  | P4.Program.Eq -> bool_of (Int64.equal va vb)
  | P4.Program.Ne -> bool_of (not (Int64.equal va vb))
  | P4.Program.Lt -> bool_of (Int64.unsigned_compare va vb < 0)
  | P4.Program.Gt -> bool_of (Int64.unsigned_compare va vb > 0)
  | P4.Program.Le -> bool_of (Int64.unsigned_compare va vb <= 0)
  | P4.Program.Ge -> bool_of (Int64.unsigned_compare va vb >= 0)
  | P4.Program.BoolAnd -> bool_of ((not (Int64.equal va 0L)) && not (Int64.equal vb 0L))
  | P4.Program.BoolOr -> bool_of ((not (Int64.equal va 0L)) || not (Int64.equal vb 0L))

(* Constant-fold an action expression exactly as the interpreter's
   [eval] would compute it, using parameter values, path-pinned fields,
   and writes earlier in the same action body ([written] maps a field to
   [Some c] after a constant write, [None] after an opaque one). *)
let rec expr_value ~prog ~params ~(env : env) ~written ~validity
    (e : P4.Program.expr) : int64 option =
  let recur = expr_value ~prog ~params ~env ~written ~validity in
  match e with
  | P4.Program.EConst (w, v) -> Some (mask_w w v)
  | P4.Program.EParam p -> (
    match List.assoc_opt p params with
    | Some v -> Some v
    | None -> unsupported "unbound parameter %s" p)
  | P4.Program.ERef r -> (
    let name = ref_name r in
    match Hashtbl.find_opt written name with
    | Some (Some c) -> Some c
    | Some None -> None
    | None ->
      let fm = full_mask (ref_width_exn prog r) in
      (match SM.find_opt name env with
      | Some (m, v) when Int64.equal (Int64.logand fm (Int64.lognot m)) 0L ->
        Some (Int64.logand v fm)
      | _ -> None))
  | P4.Program.EValid h -> (
    match Hashtbl.find_opt validity h with
    | Some b -> Some (if b then 1L else 0L)
    | None -> (
      match SM.find_opt (valid_field h) env with
      | Some (m, v) when Int64.equal (Int64.logand m 1L) 1L ->
        Some (Int64.logand v 1L)
      | _ -> None))
  | P4.Program.ENot e ->
    Option.map (fun v -> if Int64.equal v 0L then 1L else 0L) (recur e)
  | P4.Program.EBin (op, a, b) -> (
    match (recur a, recur b) with
    | Some va, Some vb -> Some (binop_value op va vb)
    | _ -> None)

(* Compile one P4 action invocation into OpenFlow actions.  [env] pins
   match-path field values (empty for the naive backend). *)
let compile_action_body ~(prog : P4.Program.t) ~(env : env) ~(aname : string)
    ~(args : int64 list) ~(next : int option) : Openflow.action list =
  let action =
    match P4.Program.find_action prog aname with
    | Some a -> a
    | None -> unsupported "unknown action %s" aname
  in
  let params = List.map2 (fun (n, w) v -> (n, mask_w w v)) action.params args in
  let written : (string, int64 option) Hashtbl.t = Hashtbl.create 8 in
  let validity : (string, bool) Hashtbl.t = Hashtbl.create 4 in
  let acts = ref [] in
  let dropped = ref false in
  let emit a = acts := a :: !acts in
  let value e = expr_value ~prog ~params ~env ~written ~validity e in
  (* forwarding state writes: constant if resolvable, else a field copy *)
  let emit_store ~what reg e =
    match value e with
    | Some v -> emit (Openflow.SetField (reg, v))
    | None -> (
      match e with
      | P4.Program.ERef r -> emit (Openflow.CopyField (reg, ref_name r))
      | _ -> unsupported "%s expression is neither constant nor a field" what)
  in
  List.iter
    (fun prim ->
      match prim with
      | P4.Program.Forward e ->
        emit_store ~what:"forward" Openflow.reg_egress e;
        emit (Openflow.SetField (Openflow.reg_has_dest, 1L))
      | P4.Program.Multicast e -> emit_store ~what:"multicast" Openflow.reg_mcast e
      | P4.Program.Drop -> dropped := true
      | P4.Program.EmitDigest d -> emit (Openflow.ToController d)
      | P4.Program.Assign (P4.Program.Meta "egress_spec", e) ->
        (* writing egress_spec is how v1model programs unicast, so it
           must also arm has_dest; write_ref masks to 16 bits *)
        (match value e with
        | Some v -> emit (Openflow.SetField (Openflow.reg_egress, mask_w 16 v))
        | None -> (
          match e with
          | P4.Program.ERef r ->
            emit (Openflow.CopyField (Openflow.reg_egress, ref_name r));
            emit (Openflow.AddConst (Openflow.reg_egress, 0L, 16))
          | _ -> unsupported "egress_spec expression"));
        emit (Openflow.SetField (Openflow.reg_has_dest, 1L))
      | P4.Program.Assign (P4.Program.Meta "mcast_grp", e) ->
        (match value e with
        | Some v -> emit (Openflow.SetField (Openflow.reg_mcast, mask_w 16 v))
        | None -> (
          match e with
          | P4.Program.ERef r ->
            emit (Openflow.CopyField (Openflow.reg_mcast, ref_name r));
            emit (Openflow.AddConst (Openflow.reg_mcast, 0L, 16))
          | _ -> unsupported "mcast_grp expression"))
      | P4.Program.Assign (r, e) -> (
        let name = ref_name r in
        let w = ref_width_exn prog r in
        match value e with
        | Some v ->
          let v = mask_w w v in
          emit (Openflow.SetField (name, v));
          Hashtbl.replace written name (Some v)
        | None -> (
          let opaque () = Hashtbl.replace written name None in
          match e with
          | P4.Program.ERef s ->
            emit (Openflow.CopyField (name, ref_name s));
            opaque ()
          | P4.Program.EBin (P4.Program.Add, P4.Program.ERef s, k)
            when value k <> None ->
            let kv = Option.get (value k) in
            if not (String.equal (ref_name s) name) then
              emit (Openflow.CopyField (name, ref_name s));
            emit (Openflow.AddConst (name, kv, w));
            opaque ()
          | P4.Program.EBin (P4.Program.Add, k, P4.Program.ERef s)
            when value k <> None ->
            let kv = Option.get (value k) in
            if not (String.equal (ref_name s) name) then
              emit (Openflow.CopyField (name, ref_name s));
            emit (Openflow.AddConst (name, kv, w));
            opaque ()
          | P4.Program.EBin (P4.Program.Sub, P4.Program.ERef s, k)
            when value k <> None ->
            let kv = Option.get (value k) in
            if not (String.equal (ref_name s) name) then
              emit (Openflow.CopyField (name, ref_name s));
            emit (Openflow.AddConst (name, Int64.neg kv, w));
            opaque ()
          | _ -> unsupported "assignment to %s is not compilable" name))
      | P4.Program.SetValid "vlan" ->
        emit Openflow.PushVlan;
        Hashtbl.replace validity "vlan" true
      | P4.Program.SetInvalid "vlan" ->
        emit Openflow.PopVlan;
        Hashtbl.replace validity "vlan" false
      | P4.Program.SetValid h | P4.Program.SetInvalid h ->
        unsupported "header stack op on %s" h
      | P4.Program.CloneTo e -> (
        (* mirroring compiles to an extra output *)
        match value e with
        | Some v -> emit (Openflow.Output v)
        | None -> unsupported "clone port must be constant")
      | P4.Program.Count _ -> () (* counters are implicit per-flow in OF *)
      | P4.Program.RegWrite _ | P4.Program.RegRead _ ->
        unsupported "stateful registers")
    action.body;
  let base = List.rev !acts in
  if !dropped then base @ [ Openflow.SetField (Openflow.reg_dropped, 1L) ]
  else match next with Some t -> base @ [ Openflow.Goto t ] | None -> base

(* ---------------- the naive per-entry backend ---------------- *)

let compile_match (prog : P4.Program.t) (tbl : P4.Program.table)
    (matches : P4.Entry.match_value list) : Openflow.field_match list =
  List.concat
    (List.map2
       (fun (k : P4.Program.key) mv ->
         let width = ref_width_exn prog k.kref in
         let name = ref_name k.kref in
         match mv with
         | P4.Entry.MExact v -> [ { Openflow.mfield = name; mvalue = v; mmask = None } ]
         | P4.Entry.MLpm (v, len) ->
           [ { Openflow.mfield = name; mvalue = v;
               mmask = Some (P4.Entry.mask_of_prefix ~width ~prefix_len:len) } ]
         | P4.Entry.MTernary (v, m) ->
           [ { Openflow.mfield = name; mvalue = v; mmask = Some m } ]
         | P4.Entry.MAny -> [])
       tbl.keys matches)

(** The historical translator: one flow per entry, tables in application
    order, no conditionals.  Flow priorities are the entry's position in
    the rank order ([Entry.rank_compare]), not a sum of priority and LPM
    length — summing the two dimensions let an exact entry at priority N
    collide with an LPM /N entry, inverting winners. *)
let compile_naive (sw : P4.Switch.t) : Openflow.t =
  let prog = sw.P4.Switch.program in
  let egress_seq = table_sequence prog.egress in
  let sequence = table_sequence prog.ingress @ egress_seq in
  let out = Openflow.create () in
  let n = List.length sequence in
  List.iteri
    (fun idx tname ->
      let tbl = find_table_exn prog tname in
      let next = if idx + 1 < n then Some (idx + 1) else None in
      let entries = P4.Switch.table_entries_ranked sw tname in
      let count = List.length entries in
      List.iteri
        (fun i (e : P4.Entry.t) ->
          Openflow.add_flow out
            {
              Openflow.table_id = idx;
              priority = count - i;
              matches = compile_match prog tbl e.matches;
              actions =
                compile_action_body ~prog ~env:SM.empty ~aname:e.action
                  ~args:e.args ~next;
              cookie = Printf.sprintf "%s/%s" tname e.action;
            })
        entries;
      (* table-miss flow: the default action at priority 0 *)
      let dname, dargs = tbl.default_action in
      Openflow.add_flow out
        {
          Openflow.table_id = idx;
          priority = 0;
          matches = [];
          actions =
            compile_action_body ~prog ~env:SM.empty ~aname:dname ~args:dargs
              ~next;
          cookie = Printf.sprintf "%s/default:%s" tname dname;
        })
    sequence;
  out.n_tables <- max out.n_tables n;
  (if egress_seq <> [] then
     out.egress_start <- Some (n - List.length egress_seq));
  out

(* ---------------- the FDD backend ---------------- *)

(* What a diagram leaf means.  Ids are interned per compilation; id 0 is
   [Fdd.undef] ("no entry matched along this path" — emits nothing). *)
type decision =
  | Dentry of string * P4.Entry.t option  (* table, entry; None = default *)
  | Dpass                                 (* continue to the next table *)
  | Djump of int option                   (* goto a specific table / end *)
  | Dbool of bool                         (* condition outcome (internal) *)

type ctx = {
  prog : P4.Program.t;
  sw : P4.Switch.t;
  m : Fdd.manager;
  dec_ids : (decision, int) Hashtbl.t;
  dec_arr : (int, decision) Hashtbl.t;
  mutable next_dec : int;
}

let dec_id ctx d =
  match Hashtbl.find_opt ctx.dec_ids d with
  | Some i -> i
  | None ->
    let i = ctx.next_dec in
    ctx.next_dec <- i + 1;
    Hashtbl.add ctx.dec_ids d i;
    Hashtbl.add ctx.dec_arr i d;
    i

let dec_of ctx i = Hashtbl.find ctx.dec_arr i

(* Control linearization: a control is a list of items, each either a
   table or a conditional over two item lists. *)
type item =
  | ITable of P4.Program.table
  | ICond of P4.Program.expr * item list * item list

let rec items_of prog (c : P4.Program.control) : item list =
  match c with
  | P4.Program.Nop -> []
  | P4.Program.Seq (a, b) -> items_of prog a @ items_of prog b
  | P4.Program.ApplyTable t -> [ ITable (find_table_exn prog t) ]
  | P4.Program.If (c, a, b) -> [ ICond (c, items_of prog a, items_of prog b) ]

(* A conditional whose branches are at most one table folds into that
   table's diagram; anything larger needs its own condition table. *)
let is_simple = function [] | [ ITable _ ] -> true | _ -> false

let rec item_size = function
  | ITable _ -> 1
  | ICond (_, a, b) ->
    if is_simple a && is_simple b then 1 else 1 + n_phys a + n_phys b

and n_phys items = List.fold_left (fun acc it -> acc + item_size it) 0 items

(* Variable order: first syntactic appearance across the pipeline —
   condition fields and key columns in the order control flow reads
   them.  Fields never mentioned rank last (ties break on the name
   inside [Fdd.test_compare]). *)
let rec cond_fields (e : P4.Program.expr) acc =
  match e with
  | P4.Program.EValid h -> valid_field h :: acc
  | P4.Program.ERef r -> ref_name r :: acc
  | P4.Program.ENot e -> cond_fields e acc
  | P4.Program.EBin (_, a, b) -> cond_fields a (cond_fields b acc)
  | P4.Program.EConst _ | P4.Program.EParam _ -> acc

let field_order (stages : item list list) : string -> int =
  let rank : (string, int) Hashtbl.t = Hashtbl.create 32 in
  let n = ref 0 in
  let note f =
    if not (Hashtbl.mem rank f) then begin
      Hashtbl.add rank f !n;
      incr n
    end
  in
  let rec go items =
    List.iter
      (fun it ->
        match it with
        | ITable t ->
          List.iter (fun (k : P4.Program.key) -> note (ref_name k.kref)) t.keys
        | ICond (c, a, b) ->
          List.iter note (List.rev (cond_fields c []));
          go a;
          go b)
      items
  in
  List.iter go stages;
  fun f -> match Hashtbl.find_opt rank f with Some r -> r | None -> max_int

(* One table entry as a diagram: the conjunction of its match tests
   (sorted into the manager's order) over the entry's decision leaf,
   with [undef] on every test's miss side. *)
let entry_tests ctx (schema : (P4.Program.fref * P4.Program.match_kind * int) list)
    (e : P4.Entry.t) : Fdd.test list =
  let tests =
    List.concat
      (List.map2
         (fun (kref, _kind, width) mv ->
           let name = ref_name kref in
           match mv with
           | P4.Entry.MExact v ->
             [ { Fdd.tfield = name; tmask = full_mask width;
                 tvalue = mask_w width v } ]
           | P4.Entry.MLpm (v, len) ->
             let m = P4.Entry.mask_of_prefix ~width ~prefix_len:len in
             if Int64.equal m 0L then []
             else
               (* canonical under the mask: tests that differ only in
                  masked-out bits are the same test, and the LPM fold
                  order relies on equal tests comparing equal *)
               [ { Fdd.tfield = name; tmask = m; tvalue = Int64.logand v m } ]
           | P4.Entry.MTernary (v, m) ->
             if Int64.equal m 0L then []
             else [ { Fdd.tfield = name; tmask = m; tvalue = Int64.logand v m } ]
           | P4.Entry.MAny -> [])
         schema e.matches)
  in
  List.sort (Fdd.test_compare ctx.m) tests

let entry_fdd ctx schema tname (e : P4.Entry.t) : Fdd.t =
  let lf = Fdd.leaf (dec_id ctx (Dentry (tname, Some e))) in
  List.fold_right
    (fun t acc -> Fdd.node ctx.m t acc Fdd.undef)
    (entry_tests ctx schema e) lf

(* A whole table: union of its entries in rank order (first-defined
   wins) with the default action as the final catch-all.

   Single-LPM-key tables get a dedicated build order.  Pairwise
   [union_all] is quadratic there: whenever the right spine's test
   sorts first, union rebuilds the entire remaining left spine over the
   right entry's decision leaf, so a 10^5-route table never finishes.
   But for one LPM key the prefer-left order is free to change between
   entries whose tests cannot both hold: same-mask tests with distinct
   values are mutually exclusive, and when a finer and a coarser prefix
   both match, the finer entry outranks the coarser one under
   [Entry.rank_compare] regardless of priority (total prefix length
   dominates).  So entries may be folded coarsest-prefix-first,
   descending value within a prefix length, losers before winners on
   identical tests — an order in which every union prepends at the
   accumulator's root in O(1), giving an O(n log n) table build. *)
let table_fdd ctx (tbl : P4.Program.table) : Fdd.t =
  let schema =
    match P4.Program.table_key_schema ctx.prog tbl with
    | Ok s -> s
    | Error e -> unsupported "%s" e
  in
  let entries = P4.Switch.table_entries_ranked ctx.sw tbl.tname in
  let dflt = Fdd.leaf (dec_id ctx (Dentry (tbl.tname, None))) in
  match tbl.keys with
  | [ { P4.Program.kind = P4.Program.Lpm; _ } ] ->
    let keyed = List.map (fun e -> (entry_tests ctx schema e, e)) entries in
    let fold_order (ta, ea) (tb, eb) =
      match (ta, tb) with
      (* /0 entries test nothing and rank below every real prefix *)
      | [], [] -> P4.Entry.rank_compare ea eb
      | [], _ -> -1
      | _, [] -> 1
      | a :: _, b :: _ ->
        let c = Fdd.test_compare ctx.m a b in
        if c <> 0 then -c else P4.Entry.rank_compare ea eb
    in
    List.fold_left
      (fun acc (_, e) -> Fdd.union ctx.m (entry_fdd ctx schema tbl.tname e) acc)
      dflt
      (List.sort fold_order keyed)
  | _ ->
    let fdds = List.map (entry_fdd ctx schema tbl.tname) entries in
    Fdd.union_all ctx.m (fdds @ [ dflt ])

let bool_leaf ctx b = Fdd.leaf (dec_id ctx (Dbool b))

let is_true ctx v =
  match dec_of ctx v with Dbool b -> b | _ -> assert false

(* A condition as a diagram with boolean leaves.  Supported shapes:
   header validity, field = constant (and negations), boolean
   connectives, constants. *)
let rec cond_fdd ctx (e : P4.Program.expr) : Fdd.t =
  let lt = bool_leaf ctx true and lf = bool_leaf ctx false in
  let mk test = Fdd.node ctx.m test lt lf in
  match e with
  | P4.Program.EConst (_, v) -> if Int64.equal v 0L then lf else lt
  | P4.Program.EValid h ->
    mk { Fdd.tfield = valid_field h; tmask = 1L; tvalue = 1L }
  | P4.Program.ENot e -> negate ctx (cond_fdd ctx e)
  | P4.Program.EBin (P4.Program.Eq, P4.Program.ERef r, P4.Program.EConst (_, v))
  | P4.Program.EBin (P4.Program.Eq, P4.Program.EConst (_, v), P4.Program.ERef r)
    ->
    let w = ref_width_exn ctx.prog r in
    mk { Fdd.tfield = ref_name r; tmask = full_mask w; tvalue = mask_w w v }
  | P4.Program.EBin (P4.Program.Ne, a, b) ->
    negate ctx (cond_fdd ctx (P4.Program.EBin (P4.Program.Eq, a, b)))
  | P4.Program.EBin (P4.Program.BoolAnd, a, b) ->
    Fdd.bind ctx.m (cond_fdd ctx a) (fun v ->
        if is_true ctx v then cond_fdd ctx b else lf)
  | P4.Program.EBin (P4.Program.BoolOr, a, b) ->
    Fdd.bind ctx.m (cond_fdd ctx a) (fun v ->
        if is_true ctx v then lt else cond_fdd ctx b)
  | _ -> unsupported "condition not expressible as field tests"

and negate ctx d =
  Fdd.bind ctx.m d (fun v -> bool_leaf ctx (not (is_true ctx v)))

(* ---------------- physical-table layout ---------------- *)

(* Each physical table gets a diagram and the id of its successor;
   [None] means fall off the end of the region.  Conditionals with
   non-trivial branches embed their successors in [Djump] leaves. *)
let rec layout ctx plans items ~first ~next_after =
  match items with
  | [] -> ()
  | it :: rest ->
    let sz = item_size it in
    let next = if rest = [] then next_after else Some (first + sz) in
    (match it with
    | ITable tbl -> plans := (first, table_fdd ctx tbl, next) :: !plans
    | ICond (cond, a, b) when is_simple a && is_simple b ->
      let branch = function
        | [] -> Fdd.leaf (dec_id ctx Dpass)
        | [ ITable tbl ] -> table_fdd ctx tbl
        | _ -> assert false
      in
      let fa = branch a and fb = branch b in
      let f =
        Fdd.bind ctx.m (cond_fdd ctx cond) (fun v ->
            if is_true ctx v then fa else fb)
      in
      plans := (first, f, next) :: !plans
    | ICond (cond, a, b) ->
      let a_start = first + 1 in
      let b_start = a_start + n_phys a in
      let target items' start = if items' = [] then next else Some start in
      let ja = Fdd.leaf (dec_id ctx (Djump (target a a_start))) in
      let jb = Fdd.leaf (dec_id ctx (Djump (target b b_start))) in
      let f =
        Fdd.bind ctx.m (cond_fdd ctx cond) (fun v ->
            if is_true ctx v then ja else jb)
      in
      plans := (first, f, None) :: !plans;
      layout ctx plans a ~first:a_start ~next_after:next;
      layout ctx plans b ~first:b_start ~next_after:next);
    layout ctx plans rest ~first:(first + sz) ~next_after

(* ---------------- flow extraction ---------------- *)

(* Walk the diagram hi-before-lo (so more-specific rows come out first),
   accumulating per-field (mask, value) constraints.  A test fully
   implied by the accumulated match takes only its hi branch; a
   contradicted one only its lo branch — this is where shadowed entries
   disappear.  The lo branch records no negative information: it relies
   on the hi rows outranking it, which row order guarantees. *)
let implied (env : env) (t : Fdd.test) : [ `True | `False | `Open ] =
  match SM.find_opt t.tfield env with
  | None -> `Open
  | Some (am, av) ->
    let overlap = Int64.logand am t.tmask in
    if not (Int64.equal (Int64.logand (Int64.logxor av t.tvalue) overlap) 0L)
    then `False
    else if Int64.equal (Int64.logand t.tmask (Int64.lognot am)) 0L then `True
    else `Open

let env_add (env : env) (t : Fdd.test) : env =
  let am, av =
    Option.value ~default:(0L, 0L) (SM.find_opt t.tfield env)
  in
  SM.add t.tfield (Int64.logor am t.tmask, Int64.logor av t.tvalue) env

let extract_plan ctx out ~table_id ~next (fdd : Fdd.t) : unit =
  let rows = ref [] in
  let stack = ref [ (fdd, SM.empty) ] in
  let continue = ref true in
  while !continue do
    match !stack with
    | [] -> continue := false
    | (t, env) :: rest -> (
      stack := rest;
      match t with
      | Fdd.Leaf v -> if v <> 0 then rows := (env, v) :: !rows
      | Fdd.Node n -> (
        match implied env n.test with
        | `True -> stack := (n.hi, env) :: !stack
        | `False -> stack := (n.lo, env) :: !stack
        | `Open ->
          stack := (n.hi, env_add env n.test) :: (n.lo, env) :: !stack))
  done;
  let rows = List.rev !rows in
  let compiled =
    List.map
      (fun (env, v) ->
        let matches =
          SM.fold
            (fun f (m, v) acc ->
              { Openflow.mfield = f; mvalue = v; mmask = Some m } :: acc)
            env []
          |> List.rev
        in
        let actions, cookie =
          match dec_of ctx v with
          | Dpass ->
            ( (match next with Some t -> [ Openflow.Goto t ] | None -> []),
              Printf.sprintf "ctl%d/pass" table_id )
          | Djump tgt ->
            ( (match tgt with Some t -> [ Openflow.Goto t ] | None -> []),
              Printf.sprintf "ctl%d/branch:%s" table_id
                (match tgt with Some t -> string_of_int t | None -> "end") )
          | Dbool _ ->
            unsupported "internal: boolean decision escaped condition folding"
          | Dentry (tname, dentry) ->
            let aname, args =
              match dentry with
              | Some (e : P4.Entry.t) -> (e.action, e.args)
              | None -> (find_table_exn ctx.prog tname).default_action
            in
            let cookie =
              match dentry with
              | Some e -> Printf.sprintf "%s/%s" tname e.action
              | None -> Printf.sprintf "%s/default:%s" tname aname
            in
            (compile_action_body ~prog:ctx.prog ~env ~aname ~args ~next, cookie)
        in
        (matches, actions, cookie))
      rows
  in
  (* Priority minimisation: consecutive rows share a priority when they
     are pairwise disjoint, witnessed by a shared discriminator — a
     (field, mask) they all match with pairwise-distinct values.  The
     number of priority levels is the number of groups, not rules. *)
  let cur_disc : (string * int64 * (int64, unit) Hashtbl.t) option ref =
    ref None
  in
  let group_idx = ref (-1) in
  let with_groups =
    List.map
      (fun (matches, actions, cookie) ->
        let joined =
          match !cur_disc with
          | None -> false
          | Some (f, m, seen) -> (
            match
              List.find_opt
                (fun (fm : Openflow.field_match) ->
                  String.equal fm.mfield f
                  &&
                  match fm.mmask with
                  | Some mm -> Int64.equal mm m
                  | None -> false)
                matches
            with
            | Some fm when not (Hashtbl.mem seen fm.mvalue) ->
              Hashtbl.add seen fm.mvalue ();
              true
            | _ -> false)
        in
        if not joined then begin
          incr group_idx;
          match matches with
          | { Openflow.mfield; mvalue; mmask = Some m } :: _ ->
            let seen = Hashtbl.create 8 in
            Hashtbl.add seen mvalue ();
            cur_disc := Some (mfield, m, seen)
          | _ -> cur_disc := None
        end;
        (matches, actions, cookie, !group_idx))
      compiled
  in
  let n_groups = !group_idx + 1 in
  (* Suffix merge: extraction specialises the table default per lo-path
     (e.g. [port=1 -> default] above the catch-all default row).  A row
     is redundant when every row below it — including the empty-match
     catch-all that ends every table — performs the identical action
     list: any packet it matched falls through to an equivalent row.
     One backward pass keeps this linear in the row count. *)
  let arr = Array.of_list with_groups in
  let n = Array.length arr in
  let keep = Array.make n true in
  if n > 0 then begin
    let _, last_actions, _, _ = arr.(n - 1) in
    let uniform = ref true in
    for i = n - 2 downto 0 do
      let _, actions, _, _ = arr.(i) in
      if !uniform && actions = last_actions then keep.(i) <- false
      else uniform := false
    done
  end;
  Array.iteri
    (fun i (matches, actions, cookie, g) ->
      if keep.(i) then
        Openflow.add_flow out
          {
            Openflow.table_id;
            priority = n_groups - 1 - g;
            matches;
            actions;
            cookie;
          })
    arr

(** Compile [sw]'s program and installed entries through forwarding
    decision diagrams: per-table entry folding with shadowed-path
    elimination, [If] support (trivial branches fold into one physical
    table, larger ones become condition tables with [Goto] rows), and
    priorities assigned per disjointness group.  Ingress tables occupy
    [0, egress_start); egress tables follow and are run once per
    replicated copy by {!Eval}. *)
let compile (sw : P4.Switch.t) : Openflow.t =
  let prog = sw.P4.Switch.program in
  let ing = items_of prog prog.ingress in
  let eg = items_of prog prog.egress in
  let order = field_order [ ing; eg ] in
  let ctx =
    {
      prog;
      sw;
      m = Fdd.create ~order ();
      dec_ids = Hashtbl.create 64;
      dec_arr = Hashtbl.create 64;
      next_dec = 1;
    }
  in
  let n_ing = n_phys ing and n_eg = n_phys eg in
  let plans = ref [] in
  layout ctx plans ing ~first:0 ~next_after:None;
  layout ctx plans eg ~first:n_ing ~next_after:None;
  let out = Openflow.create () in
  List.iter
    (fun (tid, fdd, next) -> extract_plan ctx out ~table_id:tid ~next fdd)
    (List.sort (fun (a, _, _) (b, _, _) -> Int.compare a b) !plans);
  out.n_tables <- max out.n_tables (n_ing + n_eg);
  if n_eg > 0 then out.egress_start <- Some n_ing;
  out
