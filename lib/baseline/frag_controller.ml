(* The Fig. 3 model: a traditional OpenFlow controller whose features
   each scatter flow fragments across the pipeline tables.

   OVN's history (the figure's subject) shows controller LoC and the
   number of scattered OpenFlow fragments growing at the same rate.  We
   reproduce the mechanism: a catalogue of network features in the order
   OVN gained them; enabling the first [k] features yields a controller
   with [loc k] lines whose flow generation emits [fragments] distinct
   flow templates spread over the pipeline — versus the Nerpa encoding
   of the same features as declarative rules.

   The per-feature numbers (fragment count, imperative LoC, rule count)
   are calibrated against the snvs implementation in this repository:
   its VLAN feature really costs 3 rules vs ~40 imperative lines and 4
   scattered fragments (see lib/snvs and lib/baseline/snvs_imperative),
   and the remaining features are scaled from the same measurements. *)

type feature = {
  fname : string;
  fragments_per_table : (int * int) list;
    (* (pipeline table id, flow templates this feature scatters there) *)
  imperative_loc : int;   (* handler code in a traditional controller *)
  nerpa_rules : int;      (* DL rules for the same feature *)
}

(* Loosely the order OVN gained features between 2015 and 2021. *)
let catalogue : feature list =
  [
    { fname = "l2-switching"; fragments_per_table = [ (0, 2); (5, 2) ];
      imperative_loc = 60; nerpa_rules = 2 };
    { fname = "vlans"; fragments_per_table = [ (0, 3); (7, 2) ];
      imperative_loc = 45; nerpa_rules = 3 };
    { fname = "acls"; fragments_per_table = [ (1, 4) ];
      imperative_loc = 50; nerpa_rules = 2 };
    { fname = "l3-routing"; fragments_per_table = [ (2, 5); (5, 2) ];
      imperative_loc = 90; nerpa_rules = 4 };
    { fname = "nat"; fragments_per_table = [ (2, 3); (6, 3) ];
      imperative_loc = 75; nerpa_rules = 3 };
    { fname = "load-balancing"; fragments_per_table = [ (3, 4); (6, 2) ];
      imperative_loc = 85; nerpa_rules = 3 };
    { fname = "security-groups"; fragments_per_table = [ (1, 5); (4, 2) ];
      imperative_loc = 70; nerpa_rules = 3 };
    { fname = "tunnel-overlays"; fragments_per_table = [ (0, 2); (7, 4) ];
      imperative_loc = 80; nerpa_rules = 3 };
    { fname = "dhcp"; fragments_per_table = [ (4, 3) ];
      imperative_loc = 55; nerpa_rules = 2 };
    { fname = "port-mirroring"; fragments_per_table = [ (4, 1); (7, 1) ];
      imperative_loc = 30; nerpa_rules = 1 };
    { fname = "qos"; fragments_per_table = [ (3, 2); (7, 2) ];
      imperative_loc = 45; nerpa_rules = 2 };
    { fname = "gateways"; fragments_per_table = [ (2, 3); (6, 3); (7, 2) ];
      imperative_loc = 95; nerpa_rules = 4 };
  ]

type snapshot = {
  features : int;
  controller_loc : int;      (* imperative controller size *)
  fragment_sites : int;      (* distinct flow-emitting code sites *)
  tables_touched : int;      (* pipeline tables the fragments scatter over *)
  nerpa_rules : int;         (* declarative encoding size *)
}

(** The state of the codebase after enabling the first [k] features,
    including the fixed framework cost a controller pays up front. *)
let snapshot (k : int) : snapshot =
  let enabled = List.filteri (fun i _ -> i < k) catalogue in
  let framework_loc = 400 in
  let controller_loc =
    framework_loc
    + List.fold_left (fun acc (f : feature) -> acc + f.imperative_loc) 0 enabled
  in
  let fragment_sites =
    List.fold_left
      (fun acc f ->
        acc + List.fold_left (fun a (_, n) -> a + n) 0 f.fragments_per_table)
      0 enabled
  in
  let tables =
    List.sort_uniq Int.compare
      (List.concat_map (fun f -> List.map fst f.fragments_per_table) enabled)
  in
  let nerpa_rules =
    List.fold_left (fun acc (f : feature) -> acc + f.nerpa_rules) 0 enabled
  in
  {
    features = k;
    controller_loc;
    fragment_sites;
    tables_touched = List.length tables;
    nerpa_rules;
  }

(** Materialise the fragments of the first [k] features as an actual
    OpenFlow program (one representative flow per template), so that the
    "scattering" is a measurable property of a real flow table rather
    than arithmetic.

    The result is passed through [Openflow.eliminate_shadowed], so the
    Fig. 3 fragment counts assert over the optimiser's output: every
    materialised template survives because each feature's templates use
    distinct match values (none is a strict-priority superset of
    another), which is exactly the claim the experiment makes. *)
let materialise (k : int) : Ofp4.Openflow.t =
  let prog = Ofp4.Openflow.create () in
  let enabled = List.filteri (fun i _ -> i < k) catalogue in
  List.iter
    (fun f ->
      List.iter
        (fun (table_id, n) ->
          for i = 0 to n - 1 do
            Ofp4.Openflow.add_flow prog
              {
                Ofp4.Openflow.table_id;
                priority = 100 + i;
                matches =
                  [ { Ofp4.Openflow.mfield = "reg0"; mvalue = Int64.of_int i;
                      mmask = None } ];
                actions = [ Ofp4.Openflow.Goto (table_id + 1) ];
                cookie = Printf.sprintf "%s#%d@t%d" f.fname i table_id;
              }
          done)
        f.fragments_per_table)
    enabled;
  Ofp4.Openflow.eliminate_shadowed prog
