(** snvs — the "simple network virtual switch" of §4.3 of the paper:
    VLANs (access/trunk with admission control), MAC learning through
    data-plane digests, per-VLAN flooding via multicast groups, port
    mirroring, and a ternary MAC ACL.

    The three artefacts a Nerpa programmer writes are exposed here:
    the OVSDB {!schema}, the mini-P4 program {!p4}, and the DL control
    {!rules}.  Everything else is generated. *)

val schema : Ovsdb.Schema.t
(** Five management tables: Switch, Port, Mirror, Acl, Vlan. *)

val p4 : P4.Program.t
(** The data plane: strip/in_vlan/acl/mirror/smac/dmac ingress tables
    and the out_vlan egress tagger, plus the [learned_mac] digest. *)

val rules : string
(** The hand-written control-plane rules (DL source text). *)

val digest_replace : (string * string list) list
(** The MAC-mobility digest-replacement configuration
    ([learned_mac] keyed by (vlan, mac)) that {!deploy} and {!connect}
    install — exposed for harnesses that build controllers over the
    snvs planes directly (fleet baselines, {!Nerpa.Cluster}). *)

(** {1 Deployment} *)

type deployment = {
  db : Ovsdb.Db.t;
  switch : P4.Switch.t;
  controller : Nerpa.Controller.t;
}

val deploy :
  ?switch_name:string ->
  ?max_iterations:int ->
  ?endpoint:Nerpa.Endpoint.t ->
  ?exchange:Nerpa.Controller.exchange ->
  ?pool:Pool.t ->
  unit ->
  deployment
(** A ready-to-run single-switch deployment with MAC-mobility digest
    replacement configured.  [max_iterations], [endpoint] and
    [exchange] are passed through to {!Nerpa.Controller.create}
    (feedback-loop bound, plane-transport choice, cross-shard
    exchange attachment). *)

val connect :
  ?switch_names:string list ->
  ?max_iterations:int ->
  ?exchange:Nerpa.Controller.exchange ->
  ?pool:Pool.t ->
  endpoint:Nerpa.Endpoint.t ->
  unit ->
  Nerpa.Controller.t
(** An snvs controller whose database and switches (default
    [["snvs0"]]) live in another process, reached through [endpoint]
    (socket transports; see {!Nerpa.Controller.connect}).  Digest
    replacement is configured as in {!deploy}. *)

val add_port :
  deployment ->
  name:string ->
  port:int ->
  mode:string ->
  tag:int ->
  trunks:int list ->
  Ovsdb.Uuid.t
(** Insert a Port row ([mode] is ["access"] or ["trunk"]); call
    [Nerpa.Controller.sync] afterwards. *)

val del_port : deployment -> name:string -> unit

val add_mirror :
  deployment -> name:string -> select_port:int -> output_port:int -> Ovsdb.Uuid.t

val add_acl :
  deployment ->
  priority:int ->
  src:int64 ->
  src_mask:int64 ->
  dst:int64 ->
  dst_mask:int64 ->
  allow:bool ->
  Ovsdb.Uuid.t

val set_vlan_flood : deployment -> vlan:int -> flood:bool -> unit

(** {1 The §4.3 LoC inventory} *)

type loc_inventory = {
  rules_loc : int;
  generated_loc : int;
  p4_loc : int;
  ovsdb_tables : int;
  glue_loc : int;
}

val count_lines : string -> int
(** Non-empty, non-comment lines of a source string. *)

val loc_inventory : unit -> loc_inventory
