type reason =
  | Refused
  | Eof
  | Truncated
  | Bad_magic
  | Version_mismatch of int * int
  | Oversize of int
  | Codec of string
  | Io of string
  | Injected of string
  | Down
  | Protocol of string

type error = Closed of reason | Transient of reason

(* Stable, finite label set: safe as a metric/log label. *)
let reason_label = function
  | Refused -> "refused"
  | Eof -> "eof"
  | Truncated -> "truncated"
  | Bad_magic -> "bad-magic"
  | Version_mismatch _ -> "version-mismatch"
  | Oversize _ -> "oversize"
  | Codec _ -> "codec"
  | Io _ -> "io"
  | Injected kind -> "injected-" ^ kind
  | Down -> "down"
  | Protocol _ -> "protocol"

let error_to_string = function
  | Closed r -> "closed/" ^ reason_label r
  | Transient r -> "transient/" ^ reason_label r

let reason_message = function
  | Version_mismatch (ours, theirs) ->
    Printf.sprintf "protocol version mismatch: ours %d, peer sent %d" ours
      theirs
  | Oversize n -> Printf.sprintf "oversize frame: declared %d bytes" n
  | Codec msg -> "codec: " ^ msg
  | Io msg -> "io: " ^ msg
  | Protocol msg -> "protocol: " ^ msg
  | Injected kind -> "injected " ^ kind
  | r -> reason_label r

let error_message = function
  | Closed r -> "closed: " ^ reason_message r
  | Transient r -> "transient: " ^ reason_message r

type status = Connected | Disconnected

(* ---------------- frames ---------------- *)

module Frame = struct
  let magic = "NRPA"
  let version = 1
  let header_len = 14 (* magic 4 + version 1 + plane 1 + req_id 4 + len 4 *)
  let max_payload = 1 lsl 24 (* 16 MiB *)

  type plane = Mgmt | P4

  let plane_byte = function Mgmt -> 1 | P4 -> 2
  let plane_of_byte = function 1 -> Some Mgmt | 2 -> Some P4 | _ -> None
  let plane_to_string = function Mgmt -> "mgmt" | P4 -> "p4"

  let encode ~plane ~req_id payload =
    let n = String.length payload in
    let b = Buffer.create (header_len + n) in
    Buffer.add_string b magic;
    Buffer.add_char b (Char.chr version);
    Buffer.add_char b (Char.chr (plane_byte plane));
    Buffer.add_int32_be b (Int32.of_int req_id);
    Buffer.add_int32_be b (Int32.of_int n);
    Buffer.add_string b payload;
    Buffer.contents b

  (* Validate a header string (exactly [header_len] bytes, already
     read); the length field is only trusted after everything before it
     checked out. *)
  let check_header hdr =
    if String.sub hdr 0 4 <> magic then Error Bad_magic
    else
      let v = Char.code hdr.[4] in
      if v <> version then Error (Version_mismatch (version, v))
      else
        match plane_of_byte (Char.code hdr.[5]) with
        | None ->
          Error (Protocol (Printf.sprintf "bad plane tag %d" (Char.code hdr.[5])))
        | Some plane ->
          let req_id = Int32.to_int (String.get_int32_be hdr 6) in
          let len = Int32.to_int (String.get_int32_be hdr 10) in
          if len < 0 || len > max_payload then Error (Oversize len)
          else Ok (plane, req_id, len)

  let decode s =
    if String.length s < header_len then Error Truncated
    else
      match check_header (String.sub s 0 header_len) with
      | Error r -> Error r
      | Ok (plane, req_id, len) ->
        if String.length s < header_len + len then Error Truncated
        else Ok (plane, req_id, String.sub s header_len len)

  let read_exact fd n =
    let buf = Bytes.create n in
    let rec go off =
      if off = n then Ok (Bytes.unsafe_to_string buf)
      else
        match Unix.read fd buf off (n - off) with
        | 0 -> Error (if off = 0 then Eof else Truncated)
        | k -> go (off + k)
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> go off
        | exception Unix.Unix_error (Unix.ECONNRESET, _, _) ->
          (* peer vanished with data in flight: same as a close *)
          Error (if off = 0 then Eof else Truncated)
        | exception Unix.Unix_error (e, _, _) ->
          Error (Io (Unix.error_message e))
    in
    go 0

  let read_frame fd =
    match read_exact fd header_len with
    | Error r -> Error r
    | Ok hdr -> (
      match check_header hdr with
      | Error r -> Error r
      | Ok (plane, req_id, len) -> (
        match read_exact fd len with
        | Ok payload -> Ok (plane, req_id, payload)
        | Error Eof -> Error Truncated
        | Error r -> Error r))

  let write_frame fd ~plane ~req_id payload =
    if String.length payload > max_payload then
      Error (Oversize (String.length payload))
    else begin
      let b = Bytes.unsafe_of_string (encode ~plane ~req_id payload) in
      let rec go off =
        if off >= Bytes.length b then Ok ()
        else
          match Unix.write fd b off (Bytes.length b - off) with
          | k -> go (off + k)
          | exception Unix.Unix_error (Unix.EINTR, _, _) -> go off
          | exception Unix.Unix_error ((Unix.EPIPE | Unix.ECONNRESET), _, _) ->
            Error Eof
          | exception Unix.Unix_error (e, _, _) ->
            Error (Io (Unix.error_message e))
      in
      go 0
    end
end

type ('req, 'resp) t = {
  send : 'req -> ('resp, error) result;
  status : unit -> status;
  events : unit -> status list;
}

(* Process-wide transport metrics; per-link state lives in closures. *)
let m_sends = Obs.Counter.create "transport.sends"
let m_errors = Obs.Counter.create "transport.errors"
let m_wire_msgs = Obs.Counter.create "transport.wire.msgs"
let m_wire_bytes = Obs.Counter.create "transport.wire.bytes"
let m_socket_connects = Obs.Counter.create "transport.socket.connects"
let m_socket_msgs = Obs.Counter.create "transport.socket.msgs"
let m_socket_bytes = Obs.Counter.create "transport.socket.bytes"
let m_drops = Obs.Counter.create "transport.faults.drops"
let m_duplicates = Obs.Counter.create "transport.faults.duplicates"
let m_delays = Obs.Counter.create "transport.faults.delays"
let m_disconnects = Obs.Counter.create "transport.faults.disconnects"

let send t req =
  Obs.Counter.incr m_sends;
  let r = t.send req in
  (match r with Error _ -> Obs.Counter.incr m_errors | Ok _ -> ());
  r

let status t = t.status ()
let events t = t.events ()

let direct handle =
  {
    send = (fun req -> Ok (handle req));
    status = (fun () -> Connected);
    events = (fun () -> []);
  }

let wire ~encode_req ~decode_req ~encode_resp ~decode_resp handle =
  let roundtrip encode decode v =
    let bytes = encode v in
    Obs.Counter.incr m_wire_msgs;
    Obs.Counter.add m_wire_bytes (String.length bytes);
    decode bytes
  in
  let send req =
    match roundtrip encode_req decode_req req with
    | Error msg -> Error (Transient (Codec ("encode request: " ^ msg)))
    | Ok req -> (
      match roundtrip encode_resp decode_resp (handle req) with
      | Error msg -> Error (Transient (Codec ("decode response: " ^ msg)))
      | Ok resp -> Ok resp)
  in
  { send; status = (fun () -> Connected); events = (fun () -> []) }

(* ---------------- Unix-domain socket client ---------------- *)

(* A write to a peer that went away raises SIGPIPE, whose default
   disposition kills the process; we want the EPIPE error instead. *)
let ignore_sigpipe =
  lazy (if Sys.os_type = "Unix" then
          Sys.set_signal Sys.sigpipe Sys.Signal_ignore)

let socket ~plane ~path ~encode_req ~decode_resp () =
  Lazy.force ignore_sigpipe;
  let fd = ref None in
  let up = ref false in
  let pending_events = ref [] in
  let next_id = ref 0 in
  let queue_event e = pending_events := e :: !pending_events in
  let drop_conn () =
    (match !fd with
    | Some f -> ( try Unix.close f with Unix.Unix_error _ -> ())
    | None -> ());
    fd := None;
    if !up then begin
      up := false;
      queue_event Disconnected
    end
  in
  let connect_now () =
    let f = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    match Unix.connect f (Unix.ADDR_UNIX path) with
    | () ->
      Obs.Counter.incr m_socket_connects;
      Ok f
    | exception Unix.Unix_error (e, _, _) ->
      (try Unix.close f with Unix.Unix_error _ -> ());
      Error
        (match e with
        | Unix.ECONNREFUSED | Unix.ENOENT -> Refused
        | e -> Io (Unix.error_message e))
  in
  (* [announce]: whether a successful connect after a down period
     raises a Connected edge.  The constructor's eager connect is
     silent (a link born connected, like direct/faulty); every later
     down→up transition is announced so the driver reconciles. *)
  let obtain ~announce =
    match !fd with
    | Some f -> Ok f
    | None -> (
      match connect_now () with
      | Ok f ->
        fd := Some f;
        if announce && not !up then queue_event Connected;
        up := true;
        Ok f
      | Error r -> Error r)
  in
  (* eager initial connect: failure is not an event, just a down link *)
  (match obtain ~announce:false with Ok _ -> () | Error _ -> ());
  let send req =
    match obtain ~announce:true with
    | Error r -> Error (Closed r)
    | Ok f -> (
      incr next_id;
      let id = !next_id in
      let payload = encode_req req in
      Obs.Counter.incr m_socket_msgs;
      Obs.Counter.add m_socket_bytes (String.length payload);
      match Frame.write_frame f ~plane ~req_id:id payload with
      | Error r ->
        drop_conn ();
        Error (Closed r)
      | Ok () -> (
        match Frame.read_frame f with
        | Error r ->
          drop_conn ();
          Error (Closed r)
        | Ok (p, rid, body) ->
          if p <> plane then begin
            drop_conn ();
            Error
              (Closed
                 (Protocol
                    (Printf.sprintf "expected %s frame, got %s"
                       (Frame.plane_to_string plane) (Frame.plane_to_string p))))
          end
          else if rid <> id then begin
            (* the stream can no longer be trusted: a stale or reordered
               response would be mis-attributed *)
            drop_conn ();
            Error
              (Closed
                 (Protocol
                    (Printf.sprintf "response id %d for request %d" rid id)))
          end
          else begin
            Obs.Counter.incr m_socket_msgs;
            Obs.Counter.add m_socket_bytes (String.length body);
            match decode_resp body with
            | Ok resp -> Ok resp
            | Error msg -> Error (Transient (Codec msg))
          end))
  in
  {
    send;
    status = (fun () -> if !up then Connected else Disconnected);
    events =
      (fun () ->
        let es = List.rev !pending_events in
        pending_events := [];
        es);
  }

(* ---------------- fault injection ---------------- *)

type faults = {
  drop : float;
  duplicate : float;
  delay : float;
  disconnect : float;
}

let no_faults = { drop = 0.; duplicate = 0.; delay = 0.; disconnect = 0. }

let default_faults =
  { drop = 0.10; duplicate = 0.08; delay = 0.08; disconnect = 0.04 }

type ctl = {
  mutable enabled : bool;
  disconnect_now : down_for:int -> unit;
  heal_now : unit -> unit;
}

let set_faults_enabled ctl b = ctl.enabled <- b
let force_disconnect ctl ?(down_for = 3) () = ctl.disconnect_now ~down_for
let heal ctl = ctl.heal_now ()

let faulty ~seed ?(faults = default_faults) inner =
  let rng = Random.State.make [| seed |] in
  (* Delayed requests: each carries a countdown of future send attempts
     before it is replayed into the inner link. *)
  let delayed : (int ref * (unit -> unit)) list ref = ref [] in
  let down_remaining = ref 0 in
  let pending_events = ref [] in
  let queue_event e = pending_events := e :: !pending_events in
  let go_down ~down_for =
    if !down_remaining = 0 then queue_event Disconnected;
    down_remaining := max !down_remaining down_for
  in
  let tick_down () =
    (* Every send attempt moves the reconnect timer, even while down —
       otherwise a driver that keeps polling a dead switch would never
       see it come back. *)
    if !down_remaining > 0 then begin
      decr down_remaining;
      if !down_remaining = 0 then queue_event Connected
    end
  in
  let flush_delayed ~ticked =
    let still = ref [] in
    List.iter
      (fun (count, replay) ->
        if ticked then decr count;
        if !count <= 0 then replay () else still := (count, replay) :: !still)
      !delayed;
    delayed := List.rev !still
  in
  let ctl_ref = ref None in
  let send req =
    let was_down = !down_remaining > 0 in
    tick_down ();
    flush_delayed ~ticked:true;
    if was_down then Error (Closed Down)
    else begin
      let enabled =
        match !ctl_ref with Some c -> c.enabled | None -> true
      in
      let roll p = enabled && p > 0. && Random.State.float rng 1.0 < p in
      if roll faults.drop then begin
        Obs.Counter.incr m_drops;
        Error (Transient (Injected "drop"))
      end
      else if roll faults.duplicate then begin
        Obs.Counter.incr m_duplicates;
        let first = inner.send req in
        ignore (inner.send req);
        first
      end
      else if roll faults.delay then begin
        Obs.Counter.incr m_delays;
        let countdown = ref (1 + Random.State.int rng 3) in
        delayed :=
          !delayed @ [ (countdown, fun () -> ignore (inner.send req)) ];
        Error (Transient (Injected "delay"))
      end
      else if roll faults.disconnect then begin
        Obs.Counter.incr m_disconnects;
        go_down ~down_for:(2 + Random.State.int rng 3);
        Error (Closed Down)
      end
      else inner.send req
    end
  in
  let ctl =
    {
      enabled = true;
      disconnect_now =
        (fun ~down_for ->
          Obs.Counter.incr m_disconnects;
          go_down ~down_for);
      heal_now =
        (fun () ->
          List.iter (fun (_, replay) -> replay ()) !delayed;
          delayed := [];
          (match !ctl_ref with Some c -> c.enabled <- false | None -> ());
          if !down_remaining > 0 then begin
            down_remaining := 0;
            queue_event Connected
          end);
    }
  in
  ctl_ref := Some ctl;
  let t =
    {
      send;
      status =
        (fun () -> if !down_remaining > 0 then Disconnected else Connected);
      events =
        (fun () ->
          let es = List.rev !pending_events in
          pending_events := [];
          es);
    }
  in
  (t, ctl)
