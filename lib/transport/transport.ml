type reason =
  | Refused
  | Eof
  | Truncated
  | Bad_magic
  | Version_mismatch of int * int
  | Oversize of int
  | Codec of string
  | Io of string
  | Injected of string
  | Down
  | Protocol of string

type error = Closed of reason | Transient of reason

(* Stable, finite label set: safe as a metric/log label. *)
let reason_label = function
  | Refused -> "refused"
  | Eof -> "eof"
  | Truncated -> "truncated"
  | Bad_magic -> "bad-magic"
  | Version_mismatch _ -> "version-mismatch"
  | Oversize _ -> "oversize"
  | Codec _ -> "codec"
  | Io _ -> "io"
  | Injected kind -> "injected-" ^ kind
  | Down -> "down"
  | Protocol _ -> "protocol"

let error_to_string = function
  | Closed r -> "closed/" ^ reason_label r
  | Transient r -> "transient/" ^ reason_label r

let reason_message = function
  | Version_mismatch (ours, theirs) ->
    Printf.sprintf "protocol version mismatch: ours %d, peer sent %d" ours
      theirs
  | Oversize n -> Printf.sprintf "oversize frame: declared %d bytes" n
  | Codec msg -> "codec: " ^ msg
  | Io msg -> "io: " ^ msg
  | Protocol msg -> "protocol: " ^ msg
  | Injected kind -> "injected " ^ kind
  | r -> reason_label r

let error_message = function
  | Closed r -> "closed: " ^ reason_message r
  | Transient r -> "transient: " ^ reason_message r

type status = Connected | Disconnected

(* ---------------- addresses ---------------- *)

(* Where a listening peer lives: a Unix-domain socket path for
   same-host deployments, or host:port for cross-host TCP.  The
   rendered forms ("unix:PATH" / "tcp:HOST:PORT") are what shard maps
   and CLI flags carry. *)
type addr = Unix_path of string | Tcp of string * int

let addr_to_string = function
  | Unix_path p -> "unix:" ^ p
  | Tcp (h, p) -> Printf.sprintf "tcp:%s:%d" h p

let addr_of_string s =
  match String.index_opt s ':' with
  | Some i when String.sub s 0 i = "unix" ->
    let p = String.sub s (i + 1) (String.length s - i - 1) in
    if p = "" then Error "empty unix socket path" else Ok (Unix_path p)
  | Some i when String.sub s 0 i = "tcp" -> (
    let rest = String.sub s (i + 1) (String.length s - i - 1) in
    match String.rindex_opt rest ':' with
    | None -> Error (Printf.sprintf "tcp address %S lacks a port" rest)
    | Some j -> (
      let host = String.sub rest 0 j in
      let port = String.sub rest (j + 1) (String.length rest - j - 1) in
      match int_of_string_opt port with
      | Some p when p > 0 && p < 65536 && host <> "" -> Ok (Tcp (host, p))
      | _ -> Error (Printf.sprintf "bad tcp address %S" rest)))
  | _ -> Error (Printf.sprintf "bad address %S (want unix:PATH or tcp:HOST:PORT)" s)

(* ---------------- frames ---------------- *)

(* The payload serialization a connection speaks.  [Json] is the
   interoperability fallback every peer understands; [Binary] is the
   compact hot-path form.  Each frame carries its codec in the high
   nibble of the plane byte — a JSON frame is byte-identical to the
   pre-codec protocol, so a JSON-only peer and a binary-capable peer
   interoperate (see [socket]'s per-connection negotiation). *)
type codec = Json | Binary

let codec_byte = function Json -> 0 | Binary -> 1
let codec_of_byte = function 0 -> Some Json | 1 -> Some Binary | _ -> None
let codec_to_string = function Json -> "json" | Binary -> "binary"

module Frame = struct
  let magic = "NRPA"
  let version = 1
  let header_len = 14 (* magic 4 + version 1 + codec|plane 1 + req_id 4 + len 4 *)
  let max_payload = 1 lsl 24 (* 16 MiB *)

  type plane = Mgmt | P4 | Auth

  let plane_byte = function Mgmt -> 1 | P4 -> 2 | Auth -> 3
  let plane_of_byte = function
    | 1 -> Some Mgmt
    | 2 -> Some P4
    | 3 -> Some Auth
    | _ -> None
  let plane_to_string = function Mgmt -> "mgmt" | P4 -> "p4" | Auth -> "auth"

  let encode ~plane ~codec ~req_id payload =
    let n = String.length payload in
    let b = Buffer.create (header_len + n) in
    Buffer.add_string b magic;
    Buffer.add_char b (Char.chr version);
    Buffer.add_char b (Char.chr (plane_byte plane lor (codec_byte codec lsl 4)));
    Buffer.add_int32_be b (Int32.of_int req_id);
    Buffer.add_int32_be b (Int32.of_int n);
    Buffer.add_string b payload;
    Buffer.contents b

  (* Validate a header string (exactly [header_len] bytes, already
     read); the length field is only trusted after everything before it
     checked out. *)
  let check_header hdr =
    if String.sub hdr 0 4 <> magic then Error Bad_magic
    else
      let v = Char.code hdr.[4] in
      if v <> version then Error (Version_mismatch (version, v))
      else
        let b5 = Char.code hdr.[5] in
        match plane_of_byte (b5 land 0x0f), codec_of_byte (b5 lsr 4) with
        | None, _ ->
          Error (Protocol (Printf.sprintf "bad plane tag %d" (b5 land 0x0f)))
        | _, None ->
          Error (Protocol (Printf.sprintf "bad codec tag %d" (b5 lsr 4)))
        | Some plane, Some codec ->
          let req_id = Int32.to_int (String.get_int32_be hdr 6) in
          let len = Int32.to_int (String.get_int32_be hdr 10) in
          if len < 0 || len > max_payload then Error (Oversize len)
          else Ok (plane, codec, req_id, len)

  let decode s =
    if String.length s < header_len then Error Truncated
    else
      match check_header (String.sub s 0 header_len) with
      | Error r -> Error r
      | Ok (plane, codec, req_id, len) ->
        if String.length s < header_len + len then Error Truncated
        else Ok (plane, codec, req_id, String.sub s header_len len)

  let read_exact fd n =
    let buf = Bytes.create n in
    let rec go off =
      if off = n then Ok (Bytes.unsafe_to_string buf)
      else
        match Unix.read fd buf off (n - off) with
        | 0 -> Error (if off = 0 then Eof else Truncated)
        | k -> go (off + k)
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> go off
        | exception Unix.Unix_error (Unix.ECONNRESET, _, _) ->
          (* peer vanished with data in flight: same as a close *)
          Error (if off = 0 then Eof else Truncated)
        | exception Unix.Unix_error (e, _, _) ->
          Error (Io (Unix.error_message e))
    in
    go 0

  let read_frame fd =
    match read_exact fd header_len with
    | Error r -> Error r
    | Ok hdr -> (
      match check_header hdr with
      | Error r -> Error r
      | Ok (plane, codec, req_id, len) -> (
        match read_exact fd len with
        | Ok payload -> Ok (plane, codec, req_id, payload)
        | Error Eof -> Error Truncated
        | Error r -> Error r))

  (* Buffered frame reader.  A peer writes header and payload in one
     [write], so a single [read] usually yields the whole frame (and
     often the next ones too, under pipelining) — halving the syscalls
     of the header-then-payload [read_frame] path.  One reader per
     connection; never mix with raw [read_frame] on the same fd. *)
  type reader = {
    rfd : Unix.file_descr;
    mutable rbuf : Bytes.t;
    mutable rpos : int; (* next unread byte *)
    mutable rlim : int; (* bytes valid in [rbuf] *)
  }

  let reader fd = { rfd = fd; rbuf = Bytes.create 65536; rpos = 0; rlim = 0 }

  (* Ensure at least [n] unread bytes are buffered.  [Eof] only when
     the buffer held nothing at all — a clean close between frames;
     bytes stranded by a close mid-frame are [Truncated]. *)
  let rec fill r n =
    if r.rlim - r.rpos >= n then Ok ()
    else begin
      if r.rpos > 0 then begin
        let avail = r.rlim - r.rpos in
        Bytes.blit r.rbuf r.rpos r.rbuf 0 avail;
        r.rpos <- 0;
        r.rlim <- avail
      end;
      if Bytes.length r.rbuf < n then begin
        let nb = Bytes.create (max n (2 * Bytes.length r.rbuf)) in
        Bytes.blit r.rbuf 0 nb 0 r.rlim;
        r.rbuf <- nb
      end;
      match Unix.read r.rfd r.rbuf r.rlim (Bytes.length r.rbuf - r.rlim) with
      | 0 -> Error (if r.rlim = 0 then Eof else Truncated)
      | k ->
        r.rlim <- r.rlim + k;
        fill r n
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> fill r n
      | exception Unix.Unix_error (Unix.ECONNRESET, _, _) ->
        Error (if r.rlim = 0 then Eof else Truncated)
      | exception Unix.Unix_error (e, _, _) -> Error (Io (Unix.error_message e))
    end

  let take r n =
    let s = Bytes.sub_string r.rbuf r.rpos n in
    r.rpos <- r.rpos + n;
    if r.rpos = r.rlim then begin
      r.rpos <- 0;
      r.rlim <- 0
    end;
    s

  let read_frame_buf r =
    match fill r header_len with
    | Error e -> Error e
    | Ok () -> (
      match check_header (Bytes.sub_string r.rbuf r.rpos header_len) with
      | Error e -> Error e
      | Ok (plane, codec, req_id, len) -> (
        r.rpos <- r.rpos + header_len;
        match fill r len with
        | Ok () -> Ok (plane, codec, req_id, take r len)
        | Error Eof -> Error Truncated
        | Error e -> Error e))

  (* Bounded raw write of a pre-encoded byte run (one frame, or a
     coalesced pipeline batch). *)
  let write_all fd s =
    let b = Bytes.unsafe_of_string s in
    let rec go off =
      if off >= Bytes.length b then Ok ()
      else
        match Unix.write fd b off (Bytes.length b - off) with
        | k -> go (off + k)
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> go off
        | exception Unix.Unix_error ((Unix.EPIPE | Unix.ECONNRESET), _, _) ->
          Error Eof
        | exception Unix.Unix_error (e, _, _) ->
          Error (Io (Unix.error_message e))
    in
    go 0

  let write_frame fd ~plane ~codec ~req_id payload =
    if String.length payload > max_payload then
      Error (Oversize (String.length payload))
    else write_all fd (encode ~plane ~codec ~req_id payload)
end

type ('req, 'resp) t = {
  send : 'req -> ('resp, error) result;
  send_many : 'req list -> ('resp, error) result list;
  status : unit -> status;
  events : unit -> status list;
}

(* Process-wide transport metrics; per-link state lives in closures. *)
let m_sends = Obs.Counter.create "transport.sends"
let m_errors = Obs.Counter.create "transport.errors"
let m_wire_msgs = Obs.Counter.create "transport.wire.msgs"
let m_wire_bytes = Obs.Counter.create "transport.wire.bytes"
let m_socket_connects = Obs.Counter.create "transport.socket.connects"
let m_socket_msgs = Obs.Counter.create "transport.socket.msgs"
let m_socket_bytes = Obs.Counter.create "transport.socket.bytes"
let m_drops = Obs.Counter.create "transport.faults.drops"
let m_duplicates = Obs.Counter.create "transport.faults.duplicates"
let m_delays = Obs.Counter.create "transport.faults.delays"
let m_disconnects = Obs.Counter.create "transport.faults.disconnects"

let send t req =
  Obs.Counter.incr m_sends;
  let r = t.send req in
  (match r with Error _ -> Obs.Counter.incr m_errors | Ok _ -> ());
  r

let send_many t reqs =
  Obs.Counter.add m_sends (List.length reqs);
  let rs = t.send_many reqs in
  List.iter
    (function Error _ -> Obs.Counter.incr m_errors | Ok _ -> ())
    rs;
  rs

let status t = t.status ()
let events t = t.events ()

(* The default batched send: one request at a time through [send].
   Only [socket] overrides this with true pipelining. *)
let serial_send_many send reqs = List.map send reqs

let direct handle =
  let send req = Ok (handle req) in
  {
    send;
    send_many = serial_send_many send;
    status = (fun () -> Connected);
    events = (fun () -> []);
  }

(* A link whose target can be swapped at runtime — the in-process
   cluster harness kills and restarts shard daemons behind it.
   Setting a target queues the same connectivity edges a real socket
   reconnect would, so drivers resync/reconcile identically. *)
let switchable () =
  let inner = ref None in
  let pending = ref [] in
  let send req =
    match !inner with
    | None -> Error (Closed Refused)
    | Some l -> l.send req
  in
  let send_many reqs =
    match !inner with
    | None ->
      List.map (fun _ -> Error (Closed Refused)) reqs
    | Some l -> l.send_many reqs
  in
  let link =
    {
      send;
      send_many;
      status =
        (fun () ->
          match !inner with None -> Disconnected | Some l -> l.status ());
      events =
        (fun () ->
          let inherited =
            match !inner with None -> [] | Some l -> l.events ()
          in
          let es = List.rev !pending in
          pending := [];
          es @ inherited);
    }
  in
  let set target =
    (match (!inner, target) with
    | None, Some _ -> pending := Connected :: !pending
    | Some _, None -> pending := Disconnected :: !pending
    | Some _, Some _ ->
      (* a swap is a reconnect: down then up *)
      pending := Connected :: Disconnected :: !pending
    | None, None -> ());
    inner := target
  in
  (link, set)

let wire ~encode_req ~decode_req ~encode_resp ~decode_resp handle =
  let roundtrip encode decode v =
    let bytes = encode v in
    Obs.Counter.incr m_wire_msgs;
    Obs.Counter.add m_wire_bytes (String.length bytes);
    decode bytes
  in
  let send req =
    match roundtrip encode_req decode_req req with
    | Error msg -> Error (Transient (Codec ("encode request: " ^ msg)))
    | Ok req -> (
      match roundtrip encode_resp decode_resp (handle req) with
      | Error msg -> Error (Transient (Codec ("decode response: " ^ msg)))
      | Ok resp -> Ok resp)
  in
  {
    send;
    send_many = serial_send_many send;
    status = (fun () -> Connected);
    events = (fun () -> []);
  }

(* ---------------- shared-secret handshake ---------------- *)

(* A lightweight challenge/response for cross-host (TCP) deployments:
   the client opens with an [Auth] hello, the server answers a fresh
   nonce, the client proves knowledge of the shared secret with
   [MD5(nonce . NUL . secret)] in hex, the server acknowledges with
   "ok".  This keeps strangers off a listener; it is an access filter,
   not cryptography (no channel secrecy, no replay window) — a hostile
   network needs a real transport underneath.

   The hello-first shape makes every mismatch fail loudly instead of
   deadlocking: an unauthenticated client's first data frame arrives at
   an authenticating server as a non-[Auth] plane (connection closed,
   client sees EOF), and an authenticated client's hello arrives at a
   plain server the same way. *)

let auth_counter = Atomic.make 0

let fresh_nonce () =
  Digest.to_hex
    (Digest.string
       (Printf.sprintf "nerpa-%d-%d-%.9f" (Unix.getpid ())
          (Atomic.fetch_and_add auth_counter 1)
          (Unix.gettimeofday ())))

let auth_proof ~secret ~nonce = Digest.to_hex (Digest.string (nonce ^ "\x00" ^ secret))

let auth_frame fd payload =
  Frame.write_frame fd ~plane:Frame.Auth ~codec:Json ~req_id:0 payload

(* Server side, run on a freshly accepted connection before any
   request is served.  Uses the raw (unbuffered) frame reader: the
   handshake is strictly alternating, so exactly the handshake's bytes
   are consumed and the request loop's buffered reader starts clean. *)
let server_handshake ~secret fd =
  match Frame.read_frame fd with
  | Error r -> Error r
  | Ok (p, _, _, _) when p <> Frame.Auth ->
    Error (Protocol "auth required, got a data frame")
  | Ok (_, _, _, _hello) -> (
    let nonce = fresh_nonce () in
    match auth_frame fd nonce with
    | Error r -> Error r
    | Ok () -> (
      match Frame.read_frame fd with
      | Error r -> Error r
      | Ok (p, _, _, _) when p <> Frame.Auth ->
        Error (Protocol "auth proof missing")
      | Ok (_, _, _, proof) ->
        if not (String.equal proof (auth_proof ~secret ~nonce)) then
          Error (Protocol "auth proof rejected")
        else auth_frame fd "ok"))

(* Client side, run inside [socket]'s connect path (it owns the
   connection's buffered reader). *)
let client_handshake ~secret fd rd =
  match auth_frame fd "hello" with
  | Error r -> Error r
  | Ok () -> (
    match Frame.read_frame_buf rd with
    | Error r -> Error r
    | Ok (p, _, _, _) when p <> Frame.Auth ->
      Error (Protocol "expected auth challenge")
    | Ok (_, _, _, nonce) -> (
      match auth_frame fd (auth_proof ~secret ~nonce) with
      | Error r -> Error r
      | Ok () -> (
        match Frame.read_frame_buf rd with
        | Error r -> Error r
        | Ok (p, _, _, ack) ->
          if p <> Frame.Auth || not (String.equal ack "ok") then
            Error (Protocol "auth rejected")
          else Ok ())))

(* ---------------- socket client ---------------- *)

(* A write to a peer that went away raises SIGPIPE, whose default
   disposition kills the process; we want the EPIPE error instead. *)
let ignore_sigpipe =
  lazy (if Sys.os_type = "Unix" then
          Sys.set_signal Sys.sigpipe Sys.Signal_ignore)

(* Cap on frames written before responses are drained: bounds the
   socket-buffer footprint of one [send_many] batch so a large batch
   cannot deadlock against a peer whose own send buffer fills while it
   still has our requests queued. *)
let max_inflight = 32

let socket ~plane ~addr ?auth ?(codec = Binary) ~encode_req ~decode_resp () =
  Lazy.force ignore_sigpipe;
  (* the live connection: fd plus its buffered frame reader *)
  let fd = ref (None : (Unix.file_descr * Frame.reader) option) in
  let up = ref false in
  let pending_events = ref [] in
  let next_id = ref 0 in
  (* Codec negotiation state.  [active] starts at the preferred codec;
     if the very first exchange on a connection fails in a way that
     smells like a peer that cannot parse our frames (EOF or a framing
     error before any response was ever received), the link downgrades
     to JSON — sticky for the link's lifetime — and retries once.
     [conn_ok] counts successful exchanges on the current connection,
     so a mid-stream failure on a proven connection never downgrades. *)
  let active = ref codec in
  let conn_ok = ref 0 in
  let queue_event e = pending_events := e :: !pending_events in
  let drop_conn () =
    (match !fd with
    | Some (f, _) -> ( try Unix.close f with Unix.Unix_error _ -> ())
    | None -> ());
    fd := None;
    conn_ok := 0;
    if !up then begin
      up := false;
      queue_event Disconnected
    end
  in
  let resolve_sockaddr () =
    match addr with
    | Unix_path p -> Ok (Unix.PF_UNIX, Unix.ADDR_UNIX p)
    | Tcp (host, port) -> (
      let ip =
        try Some (Unix.inet_addr_of_string host)
        with Failure _ -> (
          try Some (Unix.gethostbyname host).Unix.h_addr_list.(0)
          with Not_found | Invalid_argument _ -> None)
      in
      match ip with
      | Some ip -> Ok (Unix.PF_INET, Unix.ADDR_INET (ip, port))
      | None -> Error (Io ("cannot resolve host " ^ host)))
  in
  let connect_now () =
    match resolve_sockaddr () with
    | Error r -> Error r
    | Ok (domain, sa) ->
      let f = Unix.socket domain Unix.SOCK_STREAM 0 in
      (* small request/response frames must not sit in Nagle's buffer *)
      (match addr with
      | Tcp _ -> (
        try Unix.setsockopt f Unix.TCP_NODELAY true with Unix.Unix_error _ -> ())
      | Unix_path _ -> ());
      let rec attempt () =
        match Unix.connect f sa with
        | () ->
          Obs.Counter.incr m_socket_connects;
          Ok f
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> attempt ()
        | exception Unix.Unix_error (e, _, _) ->
          (try Unix.close f with Unix.Unix_error _ -> ());
          Error
            (match e with
            | Unix.ECONNREFUSED | Unix.ENOENT -> Refused
            | e -> Io (Unix.error_message e))
      in
      attempt ()
  in
  (* [announce]: whether a successful connect after a down period
     raises a Connected edge.  The constructor's eager connect is
     silent (a link born connected, like direct/faulty); every later
     down→up transition is announced so the driver reconciles. *)
  let obtain ~announce =
    match !fd with
    | Some c -> Ok c
    | None -> (
      match connect_now () with
      | Ok f -> (
        let rd = Frame.reader f in
        let handshake =
          match auth with
          | None -> Ok ()
          | Some secret -> client_handshake ~secret f rd
        in
        match handshake with
        | Error r ->
          (try Unix.close f with Unix.Unix_error _ -> ());
          Error r
        | Ok () ->
          let c = (f, rd) in
          fd := Some c;
          conn_ok := 0;
          if announce && not !up then queue_event Connected;
          up := true;
          Ok c)
      | Error r -> Error r)
  in
  (* eager initial connect: failure is not an event, just a down link *)
  (match obtain ~announce:false with Ok _ -> () | Error _ -> ());
  let count_frame payload =
    Obs.Counter.incr m_socket_msgs;
    (* the full frame crosses the wire: header included *)
    Obs.Counter.add m_socket_bytes (Frame.header_len + String.length payload)
  in
  (* One pipelined exchange: write every request frame, then read as
     many response frames, matching responses to requests by req_id.
     Returns one result per request, in request order.  Any framing or
     I/O failure drops the connection; requests whose response had not
     yet arrived get that [Closed] error, responses already received
     keep their results. *)
  let exchange reqs : ('resp, error) result array =
    let n = Array.length reqs in
    let results = Array.make n (Error (Closed Down)) in
    match obtain ~announce:true with
    | Error r ->
      Array.fill results 0 n (Error (Closed r));
      results
    | Ok (f, rd) ->
      let c = !active in
      let ids = Array.map (fun _ -> incr next_id; !next_id) reqs in
      let fail_rest reason from =
        drop_conn ();
        for i = from to n - 1 do
          if results.(i) = Error (Closed Down) then
            results.(i) <- Error (Closed reason)
        done
      in
      (* coalesce the whole batch into one [write]: under pipelining
         the peer then sees every request in a single [read] too *)
      let write_batch () =
        let b = Buffer.create 256 in
        let rec enc i =
          if i = n then Ok ()
          else begin
            let payload = encode_req c reqs.(i) in
            if String.length payload > Frame.max_payload then
              Error (Oversize (String.length payload))
            else begin
              count_frame payload;
              Buffer.add_string b
                (Frame.encode ~plane ~codec:c ~req_id:ids.(i) payload);
              enc (i + 1)
            end
          end
        in
        match enc 0 with
        | Error r -> Error r
        | Ok () -> Frame.write_all f (Buffer.contents b)
      in
      (match write_batch () with
      | Error r -> fail_rest r 0
      | Ok () ->
        let filled = Array.make n false in
        let idx_of rid =
          let rec go i =
            if i = n then None
            else if ids.(i) = rid && not filled.(i) then Some i
            else go (i + 1)
          in
          go 0
        in
        let rec read_rest k =
          if k > 0 then
            match Frame.read_frame_buf rd with
            | Error r -> fail_rest r 0
            | Ok (p, rc, rid, body) ->
              if p <> plane then begin
                drop_conn ();
                let r =
                  Protocol
                    (Printf.sprintf "expected %s frame, got %s"
                       (Frame.plane_to_string plane) (Frame.plane_to_string p))
                in
                fail_rest r 0
              end
              else (
                match idx_of rid with
                | None ->
                  (* the stream can no longer be trusted: a stale or
                     reordered response would be mis-attributed *)
                  drop_conn ();
                  fail_rest
                    (Protocol (Printf.sprintf "unexpected response id %d" rid))
                    0
                | Some i ->
                  filled.(i) <- true;
                  count_frame body;
                  incr conn_ok;
                  (results.(i) <-
                     (match decode_resp rc body with
                     | Ok resp -> Ok resp
                     | Error msg -> Error (Transient (Codec msg))));
                  read_rest (k - 1))
        in
        read_rest n);
      results
  in
  (* A failed first exchange on a fresh connection with the binary
     codec may just mean the peer only speaks JSON (it closes on the
     unknown codec tag before answering anything): fall back to JSON
     and retry once.  [Refused]/[Io] are not negotiation failures —
     the peer is absent, not incompatible. *)
  let downgrade_worthy = function
    | Error (Closed (Eof | Truncated | Bad_magic | Protocol _))
    | Error (Closed (Version_mismatch _)) ->
      true
    | _ -> false
  in
  let exchange_negotiating reqs =
    let fresh = !conn_ok = 0 in
    let results = exchange reqs in
    if
      fresh && !active = Binary
      && Array.length results > 0
      && Array.for_all downgrade_worthy results
    then begin
      active := Json;
      exchange reqs
    end
    else results
  in
  let send req =
    (exchange_negotiating [| req |]).(0)
  in
  let send_many reqs =
    (* chunked so one huge batch cannot outrun the peer's socket buffer *)
    let rec go = function
      | [] -> []
      | reqs ->
        let rec take k acc = function
          | rest when k = 0 -> (List.rev acc, rest)
          | [] -> (List.rev acc, [])
          | r :: rest -> take (k - 1) (r :: acc) rest
        in
        let chunk, rest = take max_inflight [] reqs in
        let results = Array.to_list (exchange_negotiating (Array.of_list chunk)) in
        results @ go rest
    in
    go reqs
  in
  {
    send;
    send_many;
    status = (fun () -> if !up then Connected else Disconnected);
    events =
      (fun () ->
        let es = List.rev !pending_events in
        pending_events := [];
        es);
  }

(* ---------------- fault injection ---------------- *)

type faults = {
  drop : float;
  duplicate : float;
  delay : float;
  disconnect : float;
}

let no_faults = { drop = 0.; duplicate = 0.; delay = 0.; disconnect = 0. }

let default_faults =
  { drop = 0.10; duplicate = 0.08; delay = 0.08; disconnect = 0.04 }

type ctl = {
  mutable enabled : bool;
  disconnect_now : down_for:int -> unit;
  heal_now : unit -> unit;
}

let set_faults_enabled ctl b = ctl.enabled <- b
let force_disconnect ctl ?(down_for = 3) () = ctl.disconnect_now ~down_for
let heal ctl = ctl.heal_now ()

let faulty ~seed ?(faults = default_faults) inner =
  let rng = Random.State.make [| seed |] in
  (* Delayed requests: each carries a countdown of future send attempts
     before it is replayed into the inner link. *)
  let delayed : (int ref * (unit -> unit)) list ref = ref [] in
  let down_remaining = ref 0 in
  let pending_events = ref [] in
  let queue_event e = pending_events := e :: !pending_events in
  let go_down ~down_for =
    if !down_remaining = 0 then queue_event Disconnected;
    down_remaining := max !down_remaining down_for
  in
  let tick_down () =
    (* Every send attempt moves the reconnect timer, even while down —
       otherwise a driver that keeps polling a dead switch would never
       see it come back. *)
    if !down_remaining > 0 then begin
      decr down_remaining;
      if !down_remaining = 0 then queue_event Connected
    end
  in
  let flush_delayed ~ticked =
    let still = ref [] in
    List.iter
      (fun (count, replay) ->
        if ticked then decr count;
        if !count <= 0 then replay () else still := (count, replay) :: !still)
      !delayed;
    delayed := List.rev !still
  in
  let ctl_ref = ref None in
  let send req =
    let was_down = !down_remaining > 0 in
    tick_down ();
    flush_delayed ~ticked:true;
    if was_down then Error (Closed Down)
    else begin
      let enabled =
        match !ctl_ref with Some c -> c.enabled | None -> true
      in
      let roll p = enabled && p > 0. && Random.State.float rng 1.0 < p in
      if roll faults.drop then begin
        Obs.Counter.incr m_drops;
        Error (Transient (Injected "drop"))
      end
      else if roll faults.duplicate then begin
        Obs.Counter.incr m_duplicates;
        let first = inner.send req in
        ignore (inner.send req);
        first
      end
      else if roll faults.delay then begin
        Obs.Counter.incr m_delays;
        let countdown = ref (1 + Random.State.int rng 3) in
        delayed :=
          !delayed @ [ (countdown, fun () -> ignore (inner.send req)) ];
        Error (Transient (Injected "delay"))
      end
      else if roll faults.disconnect then begin
        Obs.Counter.incr m_disconnects;
        go_down ~down_for:(2 + Random.State.int rng 3);
        Error (Closed Down)
      end
      else inner.send req
    end
  in
  let ctl =
    {
      enabled = true;
      disconnect_now =
        (fun ~down_for ->
          Obs.Counter.incr m_disconnects;
          go_down ~down_for);
      heal_now =
        (fun () ->
          (* Heal repairs the link's state — replay what was delayed,
             clear the down timer — but must NOT disable future fault
             injection: a healed link is a normal faulty link again.
             (Tests that want a quiet link afterwards call
             [set_faults_enabled ctl false] explicitly.) *)
          List.iter (fun (_, replay) -> replay ()) !delayed;
          delayed := [];
          if !down_remaining > 0 then begin
            down_remaining := 0;
            queue_event Connected
          end);
    }
  in
  ctl_ref := Some ctl;
  let t =
    {
      send;
      (* per-request fault rolls: a batch through a faulty link behaves
         exactly like the same requests sent one at a time *)
      send_many = serial_send_many send;
      status =
        (fun () -> if !down_remaining > 0 then Disconnected else Connected);
      events =
        (fun () ->
          let es = List.rev !pending_events in
          pending_events := [];
          es);
    }
  in
  (t, ctl)
