type error = Closed | Transient of string

let error_to_string = function
  | Closed -> "link closed"
  | Transient msg -> Printf.sprintf "transient: %s" msg

type status = Connected | Disconnected

type ('req, 'resp) t = {
  send : 'req -> ('resp, error) result;
  status : unit -> status;
  events : unit -> status list;
}

(* Process-wide transport metrics; per-link state lives in closures. *)
let m_sends = Obs.Counter.create "transport.sends"
let m_errors = Obs.Counter.create "transport.errors"
let m_wire_msgs = Obs.Counter.create "transport.wire.msgs"
let m_wire_bytes = Obs.Counter.create "transport.wire.bytes"
let m_drops = Obs.Counter.create "transport.faults.drops"
let m_duplicates = Obs.Counter.create "transport.faults.duplicates"
let m_delays = Obs.Counter.create "transport.faults.delays"
let m_disconnects = Obs.Counter.create "transport.faults.disconnects"

let send t req =
  Obs.Counter.incr m_sends;
  let r = t.send req in
  (match r with Error _ -> Obs.Counter.incr m_errors | Ok _ -> ());
  r

let status t = t.status ()
let events t = t.events ()

let direct handle =
  {
    send = (fun req -> Ok (handle req));
    status = (fun () -> Connected);
    events = (fun () -> []);
  }

let wire ~encode_req ~decode_req ~encode_resp ~decode_resp handle =
  let roundtrip encode decode v =
    let bytes = encode v in
    Obs.Counter.incr m_wire_msgs;
    Obs.Counter.add m_wire_bytes (String.length bytes);
    decode bytes
  in
  let send req =
    match roundtrip encode_req decode_req req with
    | Error msg -> Error (Transient (Printf.sprintf "encode request: %s" msg))
    | Ok req -> (
      match roundtrip encode_resp decode_resp (handle req) with
      | Error msg -> Error (Transient (Printf.sprintf "decode response: %s" msg))
      | Ok resp -> Ok resp)
  in
  { send; status = (fun () -> Connected); events = (fun () -> []) }

type faults = {
  drop : float;
  duplicate : float;
  delay : float;
  disconnect : float;
}

let no_faults = { drop = 0.; duplicate = 0.; delay = 0.; disconnect = 0. }

let default_faults =
  { drop = 0.10; duplicate = 0.08; delay = 0.08; disconnect = 0.04 }

type ctl = {
  mutable enabled : bool;
  disconnect_now : down_for:int -> unit;
  heal_now : unit -> unit;
}

let set_faults_enabled ctl b = ctl.enabled <- b
let force_disconnect ctl ?(down_for = 3) () = ctl.disconnect_now ~down_for
let heal ctl = ctl.heal_now ()

let faulty ~seed ?(faults = default_faults) inner =
  let rng = Random.State.make [| seed |] in
  (* Delayed requests: each carries a countdown of future send attempts
     before it is replayed into the inner link. *)
  let delayed : (int ref * (unit -> unit)) list ref = ref [] in
  let down_remaining = ref 0 in
  let pending_events = ref [] in
  let queue_event e = pending_events := e :: !pending_events in
  let go_down ~down_for =
    if !down_remaining = 0 then queue_event Disconnected;
    down_remaining := max !down_remaining down_for
  in
  let tick_down () =
    (* Every send attempt moves the reconnect timer, even while down —
       otherwise a driver that keeps polling a dead switch would never
       see it come back. *)
    if !down_remaining > 0 then begin
      decr down_remaining;
      if !down_remaining = 0 then queue_event Connected
    end
  in
  let flush_delayed ~ticked =
    let still = ref [] in
    List.iter
      (fun (count, replay) ->
        if ticked then decr count;
        if !count <= 0 then replay () else still := (count, replay) :: !still)
      !delayed;
    delayed := List.rev !still
  in
  let ctl_ref = ref None in
  let send req =
    let was_down = !down_remaining > 0 in
    tick_down ();
    flush_delayed ~ticked:true;
    if was_down then Error Closed
    else begin
      let enabled =
        match !ctl_ref with Some c -> c.enabled | None -> true
      in
      let roll p = enabled && p > 0. && Random.State.float rng 1.0 < p in
      if roll faults.drop then begin
        Obs.Counter.incr m_drops;
        Error (Transient "injected drop")
      end
      else if roll faults.duplicate then begin
        Obs.Counter.incr m_duplicates;
        let first = inner.send req in
        ignore (inner.send req);
        first
      end
      else if roll faults.delay then begin
        Obs.Counter.incr m_delays;
        let countdown = ref (1 + Random.State.int rng 3) in
        delayed :=
          !delayed @ [ (countdown, fun () -> ignore (inner.send req)) ];
        Error (Transient "injected delay")
      end
      else if roll faults.disconnect then begin
        Obs.Counter.incr m_disconnects;
        go_down ~down_for:(2 + Random.State.int rng 3);
        Error Closed
      end
      else inner.send req
    end
  in
  let ctl =
    {
      enabled = true;
      disconnect_now =
        (fun ~down_for ->
          Obs.Counter.incr m_disconnects;
          go_down ~down_for);
      heal_now =
        (fun () ->
          List.iter (fun (_, replay) -> replay ()) !delayed;
          delayed := [];
          (match !ctl_ref with Some c -> c.enabled <- false | None -> ());
          if !down_remaining > 0 then begin
            down_remaining := 0;
            queue_event Connected
          end);
    }
  in
  ctl_ref := Some ctl;
  let t =
    {
      send;
      status =
        (fun () -> if !down_remaining > 0 then Disconnected else Connected);
      events =
        (fun () ->
          let es = List.rev !pending_events in
          pending_events := [];
          es);
    }
  in
  (t, ctl)
