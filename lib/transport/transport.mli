(** Typed, fallible message links between the Nerpa planes.

    Every plane boundary in the stack — management (OVSDB monitor),
    control-to-data (P4Runtime writes, digest streams) — is modelled as a
    request/response link that can fail.  A link is a [('req, 'resp) t]:
    [send] either returns the peer's response or an {!error}, and
    [events] reports connectivity edges ({!status} transitions) observed
    since the last drain.

    Four constructors cover the repro's needs:

    - {!direct}: in-process closure call.  Infallible and zero-copy; the
      fast path used by default deployments and the benchmarks.
    - {!wire}: round-trips every request and response through serialized
      bytes, exactly as an out-of-process channel would.  Catches codec
      asymmetries that the direct link hides.
    - {!socket}: a real out-of-process channel — length-prefixed,
      versioned frames (see {!Frame}) over a Unix-domain socket toward a
      [lib/server] process.  Reconnects lazily on each send; connection
      loss surfaces as [Closed] errors and {!status} edges feeding the
      driver's retry + reconciliation machinery.
    - {!faulty}: wraps another link and injects deterministic, seeded
      faults — drops, duplicates, delays, disconnects — for recovery
      testing.  Returns a {!ctl} handle so tests can force a disconnect
      or heal the link.

    Metric families (see README contract): [transport.sends],
    [transport.errors], [transport.wire.msgs], [transport.wire.bytes],
    [transport.socket.connects], [transport.socket.msgs],
    [transport.socket.bytes], [transport.faults.drops],
    [transport.faults.duplicates], [transport.faults.delays],
    [transport.faults.disconnects]. *)

(** Why a send failed (or why the link is down).  Socket-level failures
    (connection refused, EOF, short reads, frame corruption, version
    mismatches) and injected faults share this one type so that every
    consumer — driver, metrics, logs — sees a uniform vocabulary. *)
type reason =
  | Refused  (** the peer is not accepting connections (ECONNREFUSED /
                 missing socket file) *)
  | Eof  (** the peer closed the connection *)
  | Truncated  (** the stream ended mid-frame (short read) *)
  | Bad_magic  (** the frame does not start with {!Frame.magic} *)
  | Version_mismatch of int * int
      (** [(ours, theirs)] — the peer speaks another protocol version *)
  | Oversize of int  (** declared payload length exceeds
                         {!Frame.max_payload} (or is negative) *)
  | Codec of string  (** payload serialization / deserialization failed *)
  | Io of string  (** an OS-level error outside the cases above *)
  | Injected of string
      (** a {!faulty} link injected this fault (["drop"] / ["delay"]) *)
  | Down  (** the link is administratively or injectedly down *)
  | Protocol of string
      (** framing-level protocol violation (bad plane tag, response id
          mismatch, …) *)

type error =
  | Closed of reason
      (** the link is down; sends fail until it reconnects *)
  | Transient of reason
      (** the request was lost or rejected in transit; retrying may
          succeed *)

val reason_label : reason -> string
(** The stable per-reason label used by {!error_to_string} (e.g.
    ["bad-magic"], ["version-mismatch"], ["injected-drop"]). *)

val error_to_string : error -> string
(** A {e stable} label of the form ["closed/<reason>"] /
    ["transient/<reason>"], drawn from a finite set — safe to use as a
    metric or log label.  Payload details (messages, version numbers)
    are deliberately omitted; use {!error_message} for those. *)

val error_message : error -> string
(** Human-readable rendering including the reason's payload (codec
    message, version numbers, errno text). *)

type status = Connected | Disconnected

(** Where a listening peer lives: a Unix-domain socket path for
    same-host deployments, or [host:port] for cross-host TCP (the
    listener side lives in [lib/server]; TCP client connections set
    [TCP_NODELAY] so small request/response frames are not Nagled).
    Rendered as ["unix:PATH"] / ["tcp:HOST:PORT"] — the spelling shard
    maps and CLI [--endpoint] flags carry. *)
type addr = Unix_path of string | Tcp of string * int

val addr_to_string : addr -> string

val addr_of_string : string -> (addr, string) result
(** Inverse of {!addr_to_string}; [Error] explains the expected
    spelling. *)

(** The payload serialization a frame carries: [Json] is the fallback
    every peer understands, [Binary] the compact hot-path form (see
    [Ovsdb.Binc]).  Each frame declares its codec in the high nibble
    of the header's plane byte — a JSON frame is byte-identical to
    the pre-codec protocol.  Servers answer in the codec of the
    request; {!socket} clients negotiate per connection, downgrading
    to JSON (sticky, with one retry) if the first exchange on a fresh
    connection fails before any response, which is what a JSON-only
    peer's "close on unknown codec tag" looks like. *)
type codec = Json | Binary

val codec_to_string : codec -> string

(** The byte-level frame format spoken by {!socket} links and the
    [lib/server] accept loops: a fixed 14-byte header — magic,
    protocol version, codec + plane tags, request id, payload length —
    followed by the payload.  Mismatched peers (wrong magic or
    version) fail loudly at the first frame rather than desyncing. *)
module Frame : sig
  val magic : string  (** ["NRPA"], 4 bytes *)

  val version : int  (** current protocol version *)

  val header_len : int  (** 14 bytes *)

  val max_payload : int  (** frames above this size are rejected *)

  (** Which plane the frame belongs to; a cross-check that a client is
      talking to the right kind of socket.  [Auth] frames carry the
      shared-secret handshake and never appear after it completes. *)
  type plane = Mgmt | P4 | Auth

  val plane_to_string : plane -> string

  val encode : plane:plane -> codec:codec -> req_id:int -> string -> string
  (** Pure framing: header + payload as one string. *)

  val decode : string -> (plane * codec * int * string, reason) result
  (** Pure unframing of one complete frame: validates magic, version,
      plane and codec tags and length, returning [Truncated] on a
      short buffer and [Oversize] on an over-declared length —
      exercised directly by the framing tests. *)

  val read_frame :
    Unix.file_descr -> (plane * codec * int * string, reason) result
  (** Read one frame from a socket: header first (validated before the
      declared length is trusted), then exactly the payload.  [Eof]
      when the peer closed between frames, [Truncated] mid-frame. *)

  val write_frame :
    Unix.file_descr -> plane:plane -> codec:codec -> req_id:int -> string ->
    (unit, reason) result

  type reader
  (** Buffered frame reader over one connection.  A single [read]
      usually yields a whole frame (peers write header and payload in
      one [write]) — and, under pipelining, several frames.  Do not
      mix with raw {!read_frame} on the same descriptor: the reader
      may hold bytes the raw path would then miss. *)

  val reader : Unix.file_descr -> reader

  val read_frame_buf : reader -> (plane * codec * int * string, reason) result
  (** Like {!read_frame}, through the reader's buffer.  Same error
      contract: [Eof] only on a clean close between frames. *)

  val write_all : Unix.file_descr -> string -> (unit, reason) result
  (** Bounded raw write of pre-encoded frames (e.g. a coalesced
      pipeline batch built with {!encode}); retries on [EINTR] and
      short writes, maps [EPIPE]/[ECONNRESET] to [Eof]. *)
end

(** A request/response link.  ['req] flows toward the peer, ['resp]
    back.  Implementations are synchronous: [send] blocks until the
    response (or failure) is known. *)
type ('req, 'resp) t

val send : ('req, 'resp) t -> 'req -> ('resp, error) result
(** [send link req] delivers [req] and returns the peer's response, or
    an {!error} if the link is down or the message was lost. *)

val send_many : ('req, 'resp) t -> 'req list -> ('resp, error) result list
(** [send_many link reqs] delivers every request and returns one
    result per request, in request order.  On a {!socket} link the
    requests are pipelined: all frames are written (in chunks of at
    most 32 in flight) before responses are read back, and responses
    are matched to requests by the echoed request id — one round of
    scheduling latency for the whole batch instead of one per
    request.  If the connection fails mid-batch, requests whose
    response had already arrived keep their results and the rest
    report the [Closed] error.  Other link kinds fall back to
    sequential {!send}; in particular a {!faulty} link rolls faults
    per request, so batches face exactly the fault schedule the same
    sends would face one at a time. *)

val status : ('req, 'resp) t -> status
(** Current connectivity of the link. *)

val events : ('req, 'resp) t -> status list
(** Connectivity edges since the last call, oldest first.  Draining is
    destructive: a second call returns [[]] until new transitions
    occur.  Direct and wire links never transition and always return
    [[]]. *)

val direct : ('req -> 'resp) -> ('req, 'resp) t
(** [direct handle] is an always-connected in-process link: [send]
    calls [handle] and wraps the result in [Ok].  Exceptions raised by
    [handle] propagate to the caller (they are bugs, not link
    failures). *)

val switchable : unit -> ('req, 'resp) t * (('req, 'resp) t option -> unit)
(** [switchable ()] is a link that forwards to a swappable target,
    plus the function that swaps it.  With no target every send fails
    [Closed]; [set (Some l)] brings the link up toward [l], [set None]
    takes it down, and each transition queues the corresponding
    {!events} edges ([set (Some _)] over a live target queues a
    [Disconnected] {e and} a [Connected] — a swap is a reconnect).
    The in-process cluster harness uses this to kill and restart shard
    daemons while peers observe ordinary connectivity edges. *)

val wire :
  encode_req:('req -> string) ->
  decode_req:(string -> ('req, string) result) ->
  encode_resp:('resp -> string) ->
  decode_resp:(string -> ('resp, string) result) ->
  ('req -> 'resp) ->
  ('req, 'resp) t
(** [wire ~encode_req ~decode_req ~encode_resp ~decode_resp handle]
    serializes each request to bytes, decodes it on the "far side",
    calls [handle], and round-trips the response the same way.  A codec
    failure in either direction is a [Transient (Codec _)] error.
    Counts [transport.wire.msgs] and [transport.wire.bytes]. *)

val server_handshake : secret:string -> Unix.file_descr -> (unit, reason) result
(** Run the listener side of the shared-secret handshake on a freshly
    accepted connection, before any request is read: expect the
    client's [Auth] hello, challenge with a fresh nonce, verify
    [MD5(nonce . NUL . secret)], acknowledge.  Consumes exactly the
    handshake's bytes (raw frame reads), so the request loop's
    buffered reader starts clean.  Any mismatch — wrong proof, or a
    data frame where the hello belongs (an unauthenticated client) —
    is an [Error]; the caller closes the connection.  This is an
    access filter for cross-host listeners, not cryptography: there is
    no channel secrecy and no replay window. *)

val socket :
  plane:Frame.plane ->
  addr:addr ->
  ?auth:string ->
  ?codec:codec ->
  encode_req:(codec -> 'req -> string) ->
  decode_resp:(codec -> string -> ('resp, string) result) ->
  unit ->
  ('req, 'resp) t
(** [socket ~plane ~addr ~encode_req ~decode_resp ()] connects to the
    listener at [addr] (Unix-domain path or TCP host:port) and speaks
    {!Frame}-framed requests tagged with [plane].  [auth], when given,
    runs the client side of the shared-secret handshake on every fresh
    connection before any request; a handshake failure surfaces as the
    connect failing ([Closed]).  [codec] (default [Binary]) is the preferred
    payload serialization; the codec functions receive the frame's
    codec, and responses are decoded by the codec their frame
    declares.  If the first exchange on a fresh connection fails
    before any response arrived (EOF / framing error — a JSON-only
    peer closes on the unknown codec tag), the link downgrades to
    JSON for its lifetime and retries that exchange once.

    The constructor attempts an eager connect (a link born connected
    raises no event); thereafter every send on a down link retries
    the connect, and a down→up transition queues a [Connected] event
    so the driver can reconcile / resync.  Any framing or I/O failure
    drops the connection, queues [Disconnected], and surfaces as
    [Closed reason]; only payload codec failures are [Transient].
    Responses are matched to requests by the echoed request id; an
    unknown id closes the connection (the stream can no longer be
    trusted). *)

(** Which fault kinds a {!faulty} link may inject.  Probabilities are
    per-send and evaluated in the order drop, duplicate, delay,
    disconnect; at most one fault fires per send. *)
type faults = {
  drop : float;  (** request lost; the send returns [Transient] *)
  duplicate : float;
      (** request delivered twice; the first response is returned *)
  delay : float;
      (** request is held back and replayed after 1–3 later sends; the
          send returns [Transient] (the caller sees a loss), and the
          eventual late response is discarded *)
  disconnect : float;
      (** link goes down for 2–4 send attempts; sends while down return
          [Closed] and count toward the reconnect timer *)
}

val no_faults : faults
val default_faults : faults
(** [no_faults] is all zeros. [default_faults] is a moderately lossy
    profile suitable for convergence tests. *)

(** Handle for steering a {!faulty} link from a test harness. *)
type ctl

val set_faults_enabled : ctl -> bool -> unit
(** Enable or disable random fault injection (forced disconnects still
    work while disabled). *)

val force_disconnect : ctl -> ?down_for:int -> unit -> unit
(** Take the link down now, for [down_for] (default 3) send attempts. *)

val heal : ctl -> unit
(** Deliver any still-pending delayed requests to the inner link
    (their responses are discarded), clear the down timer, and
    reconnect.  Healing repairs the link's {e state} only: random
    fault injection stays armed afterwards — callers that want a
    quiet link must also {!set_faults_enabled} [false]. *)

val faulty :
  seed:int -> ?faults:faults -> ('req, 'resp) t -> ('req, 'resp) t * ctl
(** [faulty ~seed inner] wraps [inner] with deterministic fault
    injection driven by a PRNG seeded with [seed]: equal seeds yield
    identical fault schedules for identical send sequences.  Faults
    default to {!default_faults}. *)
