(** Typed, fallible message links between the Nerpa planes.

    Every plane boundary in the stack — management (OVSDB monitor),
    control-to-data (P4Runtime writes, digest streams) — is modelled as a
    request/response link that can fail.  A link is a [('req, 'resp) t]:
    [send] either returns the peer's response or an {!error}, and
    [events] reports connectivity edges ({!status} transitions) observed
    since the last drain.

    Three constructors cover the repro's needs:

    - {!direct}: in-process closure call.  Infallible and zero-copy; the
      fast path used by default deployments and the benchmarks.
    - {!wire}: round-trips every request and response through serialized
      bytes, exactly as an out-of-process channel would.  Catches codec
      asymmetries that the direct link hides.
    - {!faulty}: wraps another link and injects deterministic, seeded
      faults — drops, duplicates, delays, disconnects — for recovery
      testing.  Returns a {!ctl} handle so tests can force a disconnect
      or heal the link.

    Metric families (see README contract): [transport.sends],
    [transport.errors], [transport.wire.msgs], [transport.wire.bytes],
    [transport.faults.drops], [transport.faults.duplicates],
    [transport.faults.delays], [transport.faults.disconnects]. *)

type error =
  | Closed  (** the link is down; sends fail until it reconnects *)
  | Transient of string
      (** the request was lost or rejected in transit; retrying may
          succeed *)

val error_to_string : error -> string

type status = Connected | Disconnected

(** A request/response link.  ['req] flows toward the peer, ['resp]
    back.  Implementations are synchronous: [send] blocks until the
    response (or failure) is known. *)
type ('req, 'resp) t

val send : ('req, 'resp) t -> 'req -> ('resp, error) result
(** [send link req] delivers [req] and returns the peer's response, or
    an {!error} if the link is down or the message was lost. *)

val status : ('req, 'resp) t -> status
(** Current connectivity of the link. *)

val events : ('req, 'resp) t -> status list
(** Connectivity edges since the last call, oldest first.  Draining is
    destructive: a second call returns [[]] until new transitions
    occur.  Direct and wire links never transition and always return
    [[]]. *)

val direct : ('req -> 'resp) -> ('req, 'resp) t
(** [direct handle] is an always-connected in-process link: [send]
    calls [handle] and wraps the result in [Ok].  Exceptions raised by
    [handle] propagate to the caller (they are bugs, not link
    failures). *)

val wire :
  encode_req:('req -> string) ->
  decode_req:(string -> ('req, string) result) ->
  encode_resp:('resp -> string) ->
  decode_resp:(string -> ('resp, string) result) ->
  ('req -> 'resp) ->
  ('req, 'resp) t
(** [wire ~encode_req ~decode_req ~encode_resp ~decode_resp handle]
    serializes each request to bytes, decodes it on the "far side",
    calls [handle], and round-trips the response the same way.  A codec
    failure in either direction is a [Transient] error carrying the
    decoder's message.  Counts [transport.wire.msgs] and
    [transport.wire.bytes]. *)

(** Which fault kinds a {!faulty} link may inject.  Probabilities are
    per-send and evaluated in the order drop, duplicate, delay,
    disconnect; at most one fault fires per send. *)
type faults = {
  drop : float;  (** request lost; the send returns [Transient] *)
  duplicate : float;
      (** request delivered twice; the first response is returned *)
  delay : float;
      (** request is held back and replayed after 1–3 later sends; the
          send returns [Transient] (the caller sees a loss), and the
          eventual late response is discarded *)
  disconnect : float;
      (** link goes down for 2–4 send attempts; sends while down return
          [Closed] and count toward the reconnect timer *)
}

val no_faults : faults
val default_faults : faults
(** [no_faults] is all zeros. [default_faults] is a moderately lossy
    profile suitable for convergence tests. *)

(** Handle for steering a {!faulty} link from a test harness. *)
type ctl

val set_faults_enabled : ctl -> bool -> unit
(** Enable or disable random fault injection (forced disconnects still
    work while disabled). *)

val force_disconnect : ctl -> ?down_for:int -> unit -> unit
(** Take the link down now, for [down_for] (default 3) send attempts. *)

val heal : ctl -> unit
(** Deliver any still-pending delayed requests to the inner link (their
    responses are discarded), drop scheduled faults, disable further
    injection, and reconnect.  After [heal] the link behaves like its
    inner link. *)

val faulty :
  seed:int -> ?faults:faults -> ('req, 'resp) t -> ('req, 'resp) t * ctl
(** [faulty ~seed inner] wraps [inner] with deterministic fault
    injection driven by a PRNG seeded with [seed]: equal seeds yield
    identical fault schedules for identical send sequences.  Faults
    default to {!default_faults}. *)
