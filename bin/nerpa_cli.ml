(* nerpa_cli — command-line front end to the stack.

     nerpa_cli check PROGRAM.dl           type-check and show strata
     nerpa_cli run PROGRAM.dl SCRIPT      execute a transaction script
     nerpa_cli codegen                    print the DL schema generated
                                          from the snvs OVSDB + P4 planes
     nerpa_cli stats [--json]             run the snvs demo workload and
                                          print the metric registry
     nerpa_cli faultsim [--seeds N]       run the snvs workload over
                                          seeded faulty links and check
                                          convergence against a
                                          fault-free run

   Script syntax, one command per line ('#' comments):
     + Rel(const, const, ...)    stage an insertion
     - Rel(const, const, ...)    stage a deletion
     commit                      commit the transaction, print deltas
     dump Rel                    print a relation's contents *)

open Dl

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

(* ---------------- check ---------------- *)

let cmd_check file =
  let src = read_file file in
  match Parser.parse_program src with
  | Error msg ->
    Printf.eprintf "parse error: %s\n" msg;
    exit 1
  | Ok program -> (
    match Typecheck.check_program program with
    | Error errs ->
      List.iter (fun e -> Printf.eprintf "error: %s\n" e) errs;
      exit 1
    | Ok () -> (
      match Stratify.stratify program with
      | exception Stratify.Unstratifiable msg ->
        Printf.eprintf "error: unstratifiable: %s\n" msg;
        exit 1
      | strata ->
        Printf.printf "%s: %d relations, %d rules, %d strata\n" file
          (List.length program.Ast.decls)
          (List.length program.Ast.rules)
          (List.length strata);
        Format.printf "%a" Stratify.pp strata;
        List.iter
          (fun w -> Printf.printf "warning: %s\n" w)
          (Typecheck.lint program);
        exit 0))

(* ---------------- run ---------------- *)

type script_cmd =
  | Update of bool * string * Row.t
  | Commit
  | Dump of string

let parse_script_line line : script_cmd option =
  let line = String.trim line in
  if line = "" || line.[0] = '#' then None
  else if line = "commit" then Some Commit
  else if String.length line > 5 && String.sub line 0 5 = "dump " then
    Some (Dump (String.trim (String.sub line 5 (String.length line - 5))))
  else begin
    let sign, rest =
      match line.[0] with
      | '+' -> (true, String.sub line 1 (String.length line - 1))
      | '-' -> (false, String.sub line 1 (String.length line - 1))
      | _ -> failwith (Printf.sprintf "bad script line: %s" line)
    in
    (* Reuse the DL front end: parse "Rel(...)" as a fact. *)
    match Parser.parse_program (rest ^ ".") with
    | Ok { Ast.rules = [ { head; body = [] } ]; _ } ->
      let row =
        Row.intern
          (Array.map
             (function
               | Ast.EConst c -> c
               | Ast.ECall ("neg", [ Ast.EConst (Value.VInt v) ]) ->
                 Value.VInt (Int64.neg v)
               | _ -> failwith "script rows must be constants")
             head.Ast.hargs)
      in
      Some (Update (sign, head.Ast.hrel, row))
    | Ok _ | Error _ -> failwith (Printf.sprintf "bad script line: %s" line)
  end

let coerce_row (program : Ast.program) rel (row : Row.t) : Row.t =
  match Ast.find_decl program rel with
  | None -> row
  | Some d ->
    let tys = Array.of_list (List.map snd d.cols) in
    if Array.length tys <> Row.arity row then row
    else
      Row.intern
        (Array.mapi
           (fun i v ->
             match tys.(i), v with
             | Dtype.TBit w, Value.VInt x -> Value.bit w x
             | _ -> v)
           (Row.values row))

let cmd_run file script =
  let program =
    match Parser.parse_program (read_file file) with
    | Ok p -> p
    | Error msg ->
      Printf.eprintf "parse error: %s\n" msg;
      exit 1
  in
  let engine =
    try Engine.create program
    with Engine.Error msg ->
      Printf.eprintf "error: %s\n" msg;
      exit 1
  in
  let lines = String.split_on_char '\n' (read_file script) in
  let txn = ref None in
  let ensure_txn () =
    match !txn with
    | Some t -> t
    | None ->
      let t = Engine.transaction engine in
      txn := Some t;
      t
  in
  List.iteri
    (fun lineno line ->
      match parse_script_line line with
      | None -> ()
      | Some cmd -> (
        try
          match cmd with
          | Update (ins, rel, row) ->
            let row = coerce_row program rel row in
            if ins then Engine.insert (ensure_txn ()) rel row
            else Engine.delete (ensure_txn ()) rel row
          | Commit ->
            let t = ensure_txn () in
            txn := None;
            let deltas = Engine.commit t in
            Printf.printf "commit:\n";
            if deltas = [] then print_endline "  (no changes)"
            else
              List.iter
                (fun (rel, dz) ->
                  Zset.iter
                    (fun r w ->
                      Printf.printf "  %s %s%s\n"
                        (if w > 0 then "+" else "-")
                        rel (Row.to_string r))
                    dz)
                deltas
          | Dump rel ->
            Printf.printf "%s:\n" rel;
            List.iter
              (fun r -> Printf.printf "  %s\n" (Row.to_string r))
              (List.sort Row.compare (Engine.relation_rows engine rel))
        with
        | Failure msg | Engine.Error msg ->
          Printf.eprintf "script line %d: %s\n" (lineno + 1) msg;
          exit 1))
    lines;
  (match !txn with
  | Some t -> ignore (Engine.commit t)
  | None -> ());
  exit 0

(* ---------------- codegen ---------------- *)

let cmd_codegen () =
  let g = Nerpa.Codegen.generate ~schema:Snvs.schema ~p4:Snvs.p4 in
  print_endline "// relations generated from the snvs OVSDB schema and P4 program";
  print_endline (Nerpa.Codegen.decls_text g);
  exit 0

(* ---------------- stats ---------------- *)

(* Exercise every plane of the snvs deployment — OVSDB transactions,
   DL commits, P4Runtime writes, packet processing with MAC-learning
   digests — then print the Obs registry they populated. *)
let cmd_stats json =
  Obs.reset ();
  let d = Snvs.deploy () in
  ignore (Snvs.add_port d ~name:"h1" ~port:1 ~mode:"access" ~tag:10 ~trunks:[]);
  ignore (Snvs.add_port d ~name:"h2" ~port:2 ~mode:"access" ~tag:10 ~trunks:[]);
  ignore (Snvs.add_port d ~name:"h3" ~port:3 ~mode:"access" ~tag:20 ~trunks:[]);
  ignore
    (Snvs.add_port d ~name:"up" ~port:4 ~mode:"trunk" ~tag:0 ~trunks:[ 10; 20 ]);
  ignore (Nerpa.Controller.sync d.controller);
  let mac = P4.Stdhdrs.mac_of_string in
  let h1 = mac "02:00:00:00:00:01" and h2 = mac "02:00:00:00:00:02" in
  let bcast = mac "ff:ff:ff:ff:ff:ff" in
  let frame ~dst ~src =
    P4.Stdhdrs.ethernet_frame ~dst ~src ~ethertype:0x0800L ~payload:"payload"
  in
  (* Broadcast, learn, then unicast both ways. *)
  ignore (P4.Switch.process d.switch ~in_port:1 (frame ~dst:bcast ~src:h1));
  ignore (Nerpa.Controller.sync d.controller);
  ignore (P4.Switch.process d.switch ~in_port:2 (frame ~dst:h1 ~src:h2));
  ignore (Nerpa.Controller.sync d.controller);
  ignore (P4.Switch.process d.switch ~in_port:1 (frame ~dst:h2 ~src:h1));
  (* An ACL deny and the packet it drops. *)
  ignore
    (Snvs.add_acl d ~priority:10 ~src:h1 ~src_mask:0xFFFFFFFFFFFFL ~dst:h2
       ~dst_mask:0xFFFFFFFFFFFFL ~allow:false);
  ignore (Nerpa.Controller.sync d.controller);
  ignore (P4.Switch.process d.switch ~in_port:1 (frame ~dst:h2 ~src:h1));
  if json then print_endline (Obs.render_json ())
  else print_string (Obs.render_table ());
  exit 0

(* ---------------- faultsim ---------------- *)

(* The snvs MAC-learning workload over fault-injecting links: for each
   seed, run config churn + learning traffic through a lossy serialized
   P4Runtime link (drops, duplicates, delays, disconnects, plus one
   forced mid-run disconnect), then heal, reconcile, and compare the
   switch's final forwarding state byte-for-byte against a fault-free
   run of the same workload. *)

let fs_bcast = P4.Stdhdrs.mac_of_string "ff:ff:ff:ff:ff:ff"
let fs_a = P4.Stdhdrs.mac_of_string "00:00:00:00:00:0a"
let fs_b = P4.Stdhdrs.mac_of_string "00:00:00:00:00:0b"
let fs_c = P4.Stdhdrs.mac_of_string "00:00:00:00:00:0c"

let fs_dump (sw : P4.Switch.t) =
  let srv = P4runtime.attach sw in
  let info = P4runtime.info srv in
  let entries =
    List.concat_map
      (fun ti -> P4runtime.read_table srv ~table_id:ti.P4.P4info.table_id)
      info.P4.P4info.tables
  in
  let groups =
    List.map
      (fun (g, ps) -> (g, List.sort Int64.compare ps))
      (P4runtime.multicast_groups srv)
  in
  P4runtime.Wire.encode_response
    (P4runtime.Wire.Table (List.sort compare entries))
  ^ P4runtime.Wire.encode_response (P4runtime.Wire.Groups groups)

let fs_in_vlan_id =
  lazy
    (let info = P4.P4info.of_program Snvs.p4 in
     (List.find
        (fun ti -> ti.P4.P4info.table_name = "in_vlan")
        info.P4.P4info.tables)
       .P4.P4info.table_id)

(* feed a frame only once the ingress port is admitted (a host keeps
   talking until it is); each retry syncs, which also ticks a downed
   link toward reconnection *)
let fs_feed (d : Snvs.deployment) ~port src =
  let ready () =
    let srv = P4runtime.attach d.switch in
    List.exists
      (fun e ->
        match e.P4runtime.matches with
        | P4runtime.FmExact p :: _ -> p = Int64.of_int port
        | _ -> false)
      (P4runtime.read_table srv ~table_id:(Lazy.force fs_in_vlan_id))
  in
  let n = ref 100 in
  while (not (ready ())) && !n > 0 do
    decr n;
    ignore (Nerpa.Controller.sync d.controller)
  done;
  ignore
    (P4.Switch.process d.switch ~in_port:port
       (P4.Stdhdrs.ethernet_frame ~dst:fs_bcast ~src ~ethertype:0x1234L
          ~payload:"x"))

let fs_workload (d : Snvs.deployment) ~mid =
  List.iter
    (fun (name, port, mode, tag, trunks) ->
      ignore (Snvs.add_port d ~name ~port ~mode ~tag ~trunks))
    [ ("p1", 1, "access", 10, []); ("p2", 2, "access", 10, []);
      ("p3", 3, "access", 20, []); ("p4", 4, "trunk", 0, [ 10; 20 ]) ];
  ignore (Nerpa.Controller.sync d.controller);
  fs_feed d ~port:1 fs_a;
  ignore (Nerpa.Controller.sync d.controller);
  fs_feed d ~port:2 fs_b;
  ignore (Nerpa.Controller.sync d.controller);
  mid ();
  (* a config change that can land while the link is down: repaired by
     reconciliation on reconnect *)
  ignore
    (Snvs.add_acl d ~priority:10 ~src:fs_a ~src_mask:0xFFFFFFFFFFFFL
       ~dst:fs_b ~dst_mask:0xFFFFFFFFFFFFL ~allow:false);
  ignore (Nerpa.Controller.sync d.controller);
  fs_feed d ~port:3 fs_c;
  ignore (Nerpa.Controller.sync d.controller);
  (* MAC mobility: A moves to port 2 *)
  fs_feed d ~port:2 fs_a;
  ignore (Nerpa.Controller.sync d.controller)

let fs_converge (d : Snvs.deployment) ctls =
  (* [heal] keeps the fault schedule armed; end-of-run convergence wants
     quiet links, so silence injection explicitly first *)
  List.iter (fun ctl -> Transport.set_faults_enabled ctl false) ctls;
  List.iter Transport.heal ctls;
  (* a healed management link may have lost batches to delayed polls
     without a visible error: force one resync *)
  Nerpa.Controller.mark_mgmt_dirty d.controller;
  ignore (Nerpa.Controller.sync d.controller);
  fs_feed d ~port:2 fs_a;
  fs_feed d ~port:2 fs_b;
  fs_feed d ~port:3 fs_c;
  ignore (Nerpa.Controller.sync d.controller);
  Nerpa.Controller.reconcile d.controller "snvs0";
  fs_dump d.switch

let cmd_faultsim nseeds mgmt_faults =
  (* NERPA_POOL_SIZE > 0 runs every deployment on the shared domain
     pool (the CI matrix leg): the convergence check then also proves
     the parallel driver byte-identical to the sequential one. *)
  let pool =
    match Sys.getenv_opt "NERPA_POOL_SIZE" with
    | Some s
      when (match int_of_string_opt (String.trim s) with
           | Some n -> n > 0
           | None -> false) ->
      Some (Pool.default ())
    | _ -> None
  in
  let baseline =
    let d = Snvs.deploy ?pool () in
    fs_workload d ~mid:(fun () -> ());
    fs_converge d []
  in
  Printf.printf "%-6s %6s %6s %6s %6s %11s %12s %8s  %s\n" "seed" "drops"
    "dups" "delays" "disc" "reconciles" "corrections" "resyncs" "converged";
  let injected () =
    Obs.counter_value "transport.faults.drops"
    + Obs.counter_value "transport.faults.duplicates"
    + Obs.counter_value "transport.faults.delays"
  in
  let all_ok = ref true in
  for i = 1 to nseeds do
    let seed = 100 + (i * 37) in
    Obs.reset ();
    let endpoint =
      let ep =
        Nerpa.Endpoint.faulty_p4 ~seed
          { Nerpa.Endpoint.in_process with p4_of = (fun _ -> Nerpa.Endpoint.Wire) }
      in
      if mgmt_faults then Nerpa.Endpoint.faulty_mgmt ~seed:(seed + 1) ep
      else ep
    in
    let d = Snvs.deploy ?pool ~endpoint () in
    let ctl = Option.get (Nerpa.Controller.p4_ctl d.controller "snvs0") in
    let ctls =
      ctl :: Option.to_list (Nerpa.Controller.mgmt_ctl d.controller)
    in
    (* mid-run: a hard disconnect immediately healed.  [heal] must
       leave the fault schedule armed (a past bug silently disabled it),
       so the injection counters have to keep climbing afterwards. *)
    let at_heal = ref 0 in
    fs_workload d ~mid:(fun () ->
        Transport.force_disconnect ctl ~down_for:5 ();
        Transport.heal ctl;
        at_heal := injected ());
    let heal_armed = injected () > !at_heal in
    let dump = fs_converge d ctls in
    let ok = String.equal dump baseline && heal_armed in
    if not ok then all_ok := false;
    Printf.printf "%-6d %6d %6d %6d %6d %11d %12d %8d  %s%s\n" seed
      (Obs.counter_value "transport.faults.drops")
      (Obs.counter_value "transport.faults.duplicates")
      (Obs.counter_value "transport.faults.delays")
      (Obs.counter_value "transport.faults.disconnects")
      (Obs.counter_value "nerpa.reconcile.count")
      (Obs.counter_value "nerpa.reconcile.corrections")
      (Obs.counter_value "nerpa.resync.count")
      (if String.equal dump baseline then "yes" else "NO")
      (if heal_armed then "" else " (faults silent after heal!)")
  done;
  exit (if !all_ok then 0 else 1)

(* ---------------- serve / connect ---------------- *)

(* The real client/server split: [serve] hosts the snvs database and
   switch behind Unix-domain sockets; [connect] drives them from
   another process.  Together they are the smoke test for the socket
   transport (CI runs serve in the background and connect against it). *)

let serve_add_port db ~name ~port ~mode ~tag ~trunks =
  ignore
    (Ovsdb.Db.insert_exn db "Port"
       [
         ("name", Ovsdb.Datum.string name);
         ("port", Ovsdb.Datum.integer (Int64.of_int port));
         ("mode", Ovsdb.Datum.string mode);
         ("tag", Ovsdb.Datum.integer (Int64.of_int tag));
         ("trunks",
          Ovsdb.Datum.set
            (List.map (fun v -> Ovsdb.Atom.Integer (Int64.of_int v)) trunks));
       ])

(* Inject a learning frame once a connected controller has admitted the
   ingress port (installed its in_vlan entry) — the serve-side
   equivalent of a host retrying until the network lets it talk. *)
let serve_feed server switch ~port src ~timeout_s =
  let admitted () =
    Server.with_lock server (fun () ->
        let srv = P4runtime.attach switch in
        List.exists
          (fun e ->
            match e.P4runtime.matches with
            | P4runtime.FmExact p :: _ -> p = Int64.of_int port
            | _ -> false)
          (P4runtime.read_table srv ~table_id:(Lazy.force fs_in_vlan_id)))
  in
  let deadline = Unix.gettimeofday () +. timeout_s in
  let rec wait () =
    if admitted () then true
    else if Unix.gettimeofday () > deadline then false
    else begin
      Unix.sleepf 0.02;
      wait ()
    end
  in
  let ok = wait () in
  if ok then
    Server.with_lock server (fun () ->
        ignore
          (P4.Switch.process switch ~in_port:port
             (P4.Stdhdrs.ethernet_frame ~dst:fs_bcast ~src ~ethertype:0x1234L
                ~payload:"x")));
  ok

let cmd_serve dir secs workload =
  let db = Ovsdb.Db.create Snvs.schema in
  let switch = P4.Switch.create ~name:"snvs0" Snvs.p4 in
  let server = Server.create ~db ~switches:[ ("snvs0", switch) ] ~dir () in
  Server.start server;
  Printf.printf "serving snvs (db + switch snvs0) under %s%s\n%!" dir
    (match secs with
    | Some s -> Printf.sprintf " for %gs" s
    | None -> "");
  if workload then begin
    (* the administrator's config churn, applied while clients may be
       connected, plus learning traffic once ports are admitted *)
    Server.with_lock server (fun () ->
        List.iter
          (fun (name, port, mode, tag, trunks) ->
            serve_add_port db ~name ~port ~mode ~tag ~trunks)
          [ ("p1", 1, "access", 10, []); ("p2", 2, "access", 10, []);
            ("p3", 3, "access", 20, []); ("p4", 4, "trunk", 0, [ 10; 20 ]) ]);
    ignore (serve_feed server switch ~port:1 fs_a ~timeout_s:30.);
    ignore (serve_feed server switch ~port:2 fs_b ~timeout_s:30.);
    ignore (serve_feed server switch ~port:3 fs_c ~timeout_s:30.)
  end;
  (match secs with
  | Some s -> Unix.sleepf s
  | None ->
    while true do
      Unix.sleep 3600
    done);
  Server.stop server;
  exit 0

let cmd_connect dir codec rounds settle min_txns dump =
  let codec =
    match codec with
    | "json" -> Transport.Json
    | "binary" -> Transport.Binary
    | other ->
      Printf.eprintf "error: unknown codec %S (expected json or binary)\n"
        other;
      exit 2
  in
  let endpoint = Nerpa.Endpoint.sockets ~codec ~dir () in
  let c = Snvs.connect ~endpoint () in
  let quiet = ref 0 and r = ref 0 in
  while !quiet < settle && !r < rounds do
    incr r;
    let n = Nerpa.Controller.sync c in
    if n = 0 then incr quiet else quiet := 0;
    Unix.sleepf 0.05
  done;
  let st = Nerpa.Controller.stats c in
  Printf.printf "rounds=%d txns=%d entries=%d digests=%d groups=%d\n" !r
    st.Nerpa.Controller.txns st.entries_written st.digests_consumed
    st.groups_updated;
  (match Nerpa.Controller.dump_switch c "snvs0" with
  | s -> if dump then print_string s
  | exception Nerpa.Controller.Controller_error msg ->
    Printf.eprintf "error: %s\n" msg;
    exit 1);
  if st.txns < min_txns then begin
    Printf.eprintf "error: only %d txns committed (expected >= %d) — was the \
                    server reachable?\n"
      st.txns min_txns;
    exit 1
  end;
  exit 0

(* ---------------- cmdliner wiring ---------------- *)

open Cmdliner

let file_arg n doc = Arg.(required & pos n (some file) None & info [] ~doc)

let check_cmd =
  let doc = "type-check a DL program and report its strata" in
  Cmd.v
    (Cmd.info "check" ~doc)
    Term.(const cmd_check $ file_arg 0 "the .dl program")

let run_cmd =
  let doc = "run a transaction script against a DL program" in
  Cmd.v
    (Cmd.info "run" ~doc)
    Term.(
      const cmd_run $ file_arg 0 "the .dl program" $ file_arg 1 "the script file")

let codegen_cmd =
  let doc = "print the control-plane schema generated from the snvs planes" in
  Cmd.v (Cmd.info "codegen" ~doc) Term.(const cmd_codegen $ const ())

let stats_cmd =
  let doc =
    "run the snvs demo workload and print the observability registry"
  in
  let json =
    Arg.(value & flag & info [ "json" ] ~doc:"print one line of JSON")
  in
  Cmd.v (Cmd.info "stats" ~doc) Term.(const cmd_stats $ json)

let faultsim_cmd =
  let doc =
    "run the snvs workload over seeded faulty links and check that every \
     run converges to the fault-free switch state"
  in
  let seeds =
    Arg.(
      value & opt int 5
      & info [ "seeds" ] ~doc:"number of seeded fault schedules to run")
  in
  let mgmt_faults =
    Arg.(
      value & flag
      & info [ "mgmt-faults" ]
          ~doc:
            "also inject faults on the management (OVSDB monitor) link, \
             exercising the monitor-resync repair path")
  in
  Cmd.v (Cmd.info "faultsim" ~doc)
    Term.(const cmd_faultsim $ seeds $ mgmt_faults)

let serve_cmd =
  let doc =
    "host the snvs database and switch behind Unix-domain sockets (the \
     server half of the client/server split)"
  in
  let dir =
    Arg.(
      value & opt string "/tmp/nerpa"
      & info [ "dir" ] ~doc:"socket directory (created if missing)")
  in
  let for_ =
    Arg.(
      value & opt (some float) None
      & info [ "for" ] ~docv:"SECS" ~doc:"serve for this long, then exit \
                                          (default: forever)")
  in
  let workload =
    Arg.(
      value & flag
      & info [ "workload" ]
          ~doc:
            "apply the snvs config workload to the hosted database and \
             inject learning traffic once a connected controller admits \
             the ports")
  in
  Cmd.v (Cmd.info "serve" ~doc) Term.(const cmd_serve $ dir $ for_ $ workload)

let connect_cmd =
  let doc =
    "drive a controller against a nerpa_cli serve process over Unix-domain \
     sockets"
  in
  let dir =
    Arg.(
      value & opt string "/tmp/nerpa"
      & info [ "dir" ] ~doc:"socket directory of the serve process")
  in
  let codec =
    Arg.(
      value & opt string "binary"
      & info [ "codec" ] ~docv:"CODEC"
          ~doc:
            "preferred wire codec, $(b,binary) or $(b,json); binary \
             negotiates down to json against a pre-codec server")
  in
  let rounds =
    Arg.(
      value & opt int 200
      & info [ "rounds" ] ~doc:"maximum sync rounds before giving up")
  in
  let settle =
    Arg.(
      value & opt int 10
      & info [ "settle" ]
          ~doc:"consecutive quiescent rounds that count as converged")
  in
  let min_txns =
    Arg.(
      value & opt int 0
      & info [ "min-txns" ]
          ~doc:"fail unless at least this many transactions were committed")
  in
  let dump =
    Arg.(
      value & flag
      & info [ "dump" ] ~doc:"print the switch's final forwarding state")
  in
  Cmd.v (Cmd.info "connect" ~doc)
    Term.(const cmd_connect $ dir $ codec $ rounds $ settle $ min_txns $ dump)

let () =
  let doc = "Nerpa full-stack SDN tooling" in
  let info = Cmd.info "nerpa_cli" ~doc ~version:"1.0.0" in
  exit
    (Cmd.eval
       (Cmd.group info
          [ check_cmd; run_cmd; codegen_cmd; stats_cmd; faultsim_cmd;
            serve_cmd; connect_cmd ]))
