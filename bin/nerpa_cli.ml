(* nerpa_cli — command-line front end to the stack.

     nerpa_cli check PROGRAM.dl           type-check and show strata
     nerpa_cli run PROGRAM.dl SCRIPT      execute a transaction script
     nerpa_cli codegen                    print the DL schema generated
                                          from the snvs OVSDB + P4 planes
     nerpa_cli stats [--json]             run the snvs demo workload and
                                          print the metric registry (or,
                                          with --endpoint/--shard-map,
                                          aggregate a live cluster's)
     nerpa_cli faultsim [--seeds N]       run the snvs workload over
                                          seeded faulty links and check
                                          convergence against a
                                          fault-free run
     nerpa_cli serve --shard K            host one shard's daemon
     nerpa_cli cluster --shards N         in-process N-shard fleet,
                                          checked byte-for-byte against
                                          the 1-controller baseline

   serve/connect/faultsim/stats share one flag spelling:
   --endpoint in-process|wire|dir:PATH|tcp:HOST:PORT, --codec
   json|binary, --shard-map FILE (with --shard K selecting this
   process's shard).

   Script syntax, one command per line ('#' comments):
     + Rel(const, const, ...)    stage an insertion
     - Rel(const, const, ...)    stage a deletion
     commit                      commit the transaction, print deltas
     dump Rel                    print a relation's contents *)

open Dl

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

(* ---------------- check ---------------- *)

let cmd_check file =
  let src = read_file file in
  match Parser.parse_program src with
  | Error msg ->
    Printf.eprintf "parse error: %s\n" msg;
    exit 1
  | Ok program -> (
    match Typecheck.check_program program with
    | Error errs ->
      List.iter (fun e -> Printf.eprintf "error: %s\n" e) errs;
      exit 1
    | Ok () -> (
      match Stratify.stratify program with
      | exception Stratify.Unstratifiable msg ->
        Printf.eprintf "error: unstratifiable: %s\n" msg;
        exit 1
      | strata ->
        Printf.printf "%s: %d relations, %d rules, %d strata\n" file
          (List.length program.Ast.decls)
          (List.length program.Ast.rules)
          (List.length strata);
        Format.printf "%a" Stratify.pp strata;
        List.iter
          (fun w -> Printf.printf "warning: %s\n" w)
          (Typecheck.lint program);
        exit 0))

(* ---------------- run ---------------- *)

type script_cmd =
  | Update of bool * string * Row.t
  | Commit
  | Dump of string

let parse_script_line line : script_cmd option =
  let line = String.trim line in
  if line = "" || line.[0] = '#' then None
  else if line = "commit" then Some Commit
  else if String.length line > 5 && String.sub line 0 5 = "dump " then
    Some (Dump (String.trim (String.sub line 5 (String.length line - 5))))
  else begin
    let sign, rest =
      match line.[0] with
      | '+' -> (true, String.sub line 1 (String.length line - 1))
      | '-' -> (false, String.sub line 1 (String.length line - 1))
      | _ -> failwith (Printf.sprintf "bad script line: %s" line)
    in
    (* Reuse the DL front end: parse "Rel(...)" as a fact. *)
    match Parser.parse_program (rest ^ ".") with
    | Ok { Ast.rules = [ { head; body = [] } ]; _ } ->
      let row =
        Row.intern
          (Array.map
             (function
               | Ast.EConst c -> c
               | Ast.ECall ("neg", [ Ast.EConst (Value.VInt v) ]) ->
                 Value.VInt (Int64.neg v)
               | _ -> failwith "script rows must be constants")
             head.Ast.hargs)
      in
      Some (Update (sign, head.Ast.hrel, row))
    | Ok _ | Error _ -> failwith (Printf.sprintf "bad script line: %s" line)
  end

let coerce_row (program : Ast.program) rel (row : Row.t) : Row.t =
  match Ast.find_decl program rel with
  | None -> row
  | Some d ->
    let tys = Array.of_list (List.map snd d.cols) in
    if Array.length tys <> Row.arity row then row
    else
      Row.intern
        (Array.mapi
           (fun i v ->
             match tys.(i), v with
             | Dtype.TBit w, Value.VInt x -> Value.bit w x
             | _ -> v)
           (Row.values row))

let cmd_run file script =
  let program =
    match Parser.parse_program (read_file file) with
    | Ok p -> p
    | Error msg ->
      Printf.eprintf "parse error: %s\n" msg;
      exit 1
  in
  let engine =
    try Engine.create program
    with Engine.Error msg ->
      Printf.eprintf "error: %s\n" msg;
      exit 1
  in
  let lines = String.split_on_char '\n' (read_file script) in
  let txn = ref None in
  let ensure_txn () =
    match !txn with
    | Some t -> t
    | None ->
      let t = Engine.transaction engine in
      txn := Some t;
      t
  in
  List.iteri
    (fun lineno line ->
      match parse_script_line line with
      | None -> ()
      | Some cmd -> (
        try
          match cmd with
          | Update (ins, rel, row) ->
            let row = coerce_row program rel row in
            if ins then Engine.insert (ensure_txn ()) rel row
            else Engine.delete (ensure_txn ()) rel row
          | Commit ->
            let t = ensure_txn () in
            txn := None;
            let deltas = Engine.commit t in
            Printf.printf "commit:\n";
            if deltas = [] then print_endline "  (no changes)"
            else
              List.iter
                (fun (rel, dz) ->
                  Zset.iter
                    (fun r w ->
                      Printf.printf "  %s %s%s\n"
                        (if w > 0 then "+" else "-")
                        rel (Row.to_string r))
                    dz)
                deltas
          | Dump rel ->
            Printf.printf "%s:\n" rel;
            List.iter
              (fun r -> Printf.printf "  %s\n" (Row.to_string r))
              (List.sort Row.compare (Engine.relation_rows engine rel))
        with
        | Failure msg | Engine.Error msg ->
          Printf.eprintf "script line %d: %s\n" (lineno + 1) msg;
          exit 1))
    lines;
  (match !txn with
  | Some t -> ignore (Engine.commit t)
  | None -> ());
  exit 0

(* ---------------- codegen ---------------- *)

let cmd_codegen () =
  let g = Nerpa.Codegen.generate ~schema:Snvs.schema ~p4:Snvs.p4 in
  print_endline "// relations generated from the snvs OVSDB schema and P4 program";
  print_endline (Nerpa.Codegen.decls_text g);
  exit 0

(* ---------------- shared cluster/endpoint flags ---------------- *)

(* The one --endpoint spelling every subcommand accepts: the two
   in-process plane flavours, or a socket location in the same
   dir:/tcp: syntax shard-map lines use. *)
type ep_spec =
  | Ep_in_process
  | Ep_wire
  | Ep_loc of Nerpa.Shard_map.location

let ep_spec_of_string = function
  | "in-process" -> Ok Ep_in_process
  | "wire" -> Ok Ep_wire
  | s -> Result.map (fun l -> Ep_loc l) (Nerpa.Shard_map.location_of_string s)

let ep_spec_to_string = function
  | Ep_in_process -> "in-process"
  | Ep_wire -> "wire"
  | Ep_loc l -> Nerpa.Shard_map.location_to_string l

let load_map file =
  match Nerpa.Shard_map.parse (read_file file) with
  | Ok m -> m
  | Error e ->
    Printf.eprintf "error: %s: %s\n" file e;
    exit 2

(* The cluster a command operates on: an explicit --shard-map, or a
   synthesized single-shard map at the --endpoint socket location.
   [clustered] tells the two apart — a lone daemon hosts no exchange
   store, a mapped one always does. *)
let resolve_cluster ~shard_map ~endpoint ~switches =
  match shard_map with
  | Some file -> (load_map file, true)
  | None -> (
    match endpoint with
    | Ep_loc loc -> (Nerpa.Shard_map.create ~locations:[ loc ] ~switches, false)
    | (Ep_in_process | Ep_wire) as e ->
      Printf.eprintf
        "error: this command needs a socket endpoint (dir:PATH or \
         tcp:HOST:PORT), not %s, or a --shard-map\n"
        (ep_spec_to_string e);
      exit 2)

let check_shard map shard =
  if shard < 0 || shard >= Nerpa.Shard_map.nshards map then begin
    Printf.eprintf "error: no shard %d in the map (%d shards)\n" shard
      (Nerpa.Shard_map.nshards map);
    exit 2
  end

(* ---------------- stats ---------------- *)

(* Aggregate a live cluster's metric registries: Get_stats against
   every shard daemon's exchange store (or the lone daemon's
   management socket), summing the integer counters. *)
let cmd_stats_remote json endpoint shard_map codec auth =
  let map, clustered =
    resolve_cluster ~shard_map ~endpoint ~switches:[ "snvs0" ]
  in
  let nshards = Nerpa.Shard_map.nshards map in
  let addr k =
    if clustered then Nerpa.Shard_map.xrel_addr map k
    else Nerpa.Shard_map.mgmt_addr map
  in
  let fetch k =
    let l = Nerpa.Links.socket_mgmt ~codec ?auth ~addr:(addr k) () in
    match Transport.send l Nerpa.Links.Get_stats with
    | Ok (Nerpa.Links.Stats s) -> (k, Some s)
    | Ok _ | Error _ -> (k, None)
  in
  let shards = List.init nshards fetch in
  let totals : (string, int64) Hashtbl.t = Hashtbl.create 64 in
  List.iter
    (fun (_, s) ->
      match s with
      | None -> ()
      | Some s -> (
        match Ovsdb.Json.of_string s with
        | Ovsdb.Json.Obj kvs ->
          List.iter
            (fun (name, v) ->
              match v with
              | Ovsdb.Json.Int n ->
                let prev =
                  Option.value ~default:0L (Hashtbl.find_opt totals name)
                in
                Hashtbl.replace totals name (Int64.add prev n)
              | _ -> ())
            kvs
        | _ -> ()
        | exception Ovsdb.Json.Parse_error _ -> ()))
    shards;
  let sorted_totals =
    List.sort compare (Hashtbl.fold (fun k v acc -> (k, v) :: acc) totals [])
  in
  let ok = List.for_all (fun (_, s) -> s <> None) shards in
  if json then begin
    let b = Buffer.create 1024 in
    Buffer.add_string b "{\"shards\":{";
    List.iteri
      (fun i (k, s) ->
        if i > 0 then Buffer.add_char b ',';
        Buffer.add_string b
          (Printf.sprintf "\"%d\":%s" k
             (match s with Some s -> s | None -> "null")))
      shards;
    Buffer.add_string b "},\"total\":{";
    List.iteri
      (fun i (name, v) ->
        if i > 0 then Buffer.add_char b ',';
        Buffer.add_string b (Printf.sprintf "%S:%Ld" name v))
      sorted_totals;
    Buffer.add_string b "}}";
    print_endline (Buffer.contents b)
  end
  else begin
    List.iter
      (fun (k, s) ->
        Printf.printf "shard %d (%s): %s\n" k
          (Nerpa.Shard_map.location_to_string
             (Nerpa.Shard_map.location map (if clustered then k else 0)))
          (match s with Some _ -> "ok" | None -> "unreachable"))
      shards;
    print_endline "total:";
    List.iter
      (fun (name, v) -> Printf.printf "  %-40s %Ld\n" name v)
      sorted_totals
  end;
  exit (if ok then 0 else 1)

(* Exercise every plane of the snvs deployment — OVSDB transactions,
   DL commits, P4Runtime writes, packet processing with MAC-learning
   digests — then print the Obs registry they populated. *)
let cmd_stats json endpoint shard_map codec auth =
  (match (shard_map, endpoint) with
  | Some _, _ | None, Ep_loc _ ->
    cmd_stats_remote json endpoint shard_map codec auth
  | None, (Ep_in_process | Ep_wire) -> ());
  Obs.reset ();
  let d =
    Snvs.deploy
      ~endpoint:
        (match endpoint with
        | Ep_wire -> Nerpa.Endpoint.wire
        | _ -> Nerpa.Endpoint.in_process)
      ()
  in
  ignore (Snvs.add_port d ~name:"h1" ~port:1 ~mode:"access" ~tag:10 ~trunks:[]);
  ignore (Snvs.add_port d ~name:"h2" ~port:2 ~mode:"access" ~tag:10 ~trunks:[]);
  ignore (Snvs.add_port d ~name:"h3" ~port:3 ~mode:"access" ~tag:20 ~trunks:[]);
  ignore
    (Snvs.add_port d ~name:"up" ~port:4 ~mode:"trunk" ~tag:0 ~trunks:[ 10; 20 ]);
  ignore (Nerpa.Controller.sync d.controller);
  let mac = P4.Stdhdrs.mac_of_string in
  let h1 = mac "02:00:00:00:00:01" and h2 = mac "02:00:00:00:00:02" in
  let bcast = mac "ff:ff:ff:ff:ff:ff" in
  let frame ~dst ~src =
    P4.Stdhdrs.ethernet_frame ~dst ~src ~ethertype:0x0800L ~payload:"payload"
  in
  (* Broadcast, learn, then unicast both ways. *)
  ignore (P4.Switch.process d.switch ~in_port:1 (frame ~dst:bcast ~src:h1));
  ignore (Nerpa.Controller.sync d.controller);
  ignore (P4.Switch.process d.switch ~in_port:2 (frame ~dst:h1 ~src:h2));
  ignore (Nerpa.Controller.sync d.controller);
  ignore (P4.Switch.process d.switch ~in_port:1 (frame ~dst:h2 ~src:h1));
  (* An ACL deny and the packet it drops. *)
  ignore
    (Snvs.add_acl d ~priority:10 ~src:h1 ~src_mask:0xFFFFFFFFFFFFL ~dst:h2
       ~dst_mask:0xFFFFFFFFFFFFL ~allow:false);
  ignore (Nerpa.Controller.sync d.controller);
  ignore (P4.Switch.process d.switch ~in_port:1 (frame ~dst:h2 ~src:h1));
  if json then print_endline (Obs.render_json ())
  else print_string (Obs.render_table ());
  exit 0

(* ---------------- faultsim ---------------- *)

(* The snvs MAC-learning workload over fault-injecting links: for each
   seed, run config churn + learning traffic through a lossy serialized
   P4Runtime link (drops, duplicates, delays, disconnects, plus one
   forced mid-run disconnect), then heal, reconcile, and compare the
   switch's final forwarding state byte-for-byte against a fault-free
   run of the same workload. *)

let fs_bcast = P4.Stdhdrs.mac_of_string "ff:ff:ff:ff:ff:ff"
let fs_a = P4.Stdhdrs.mac_of_string "00:00:00:00:00:0a"
let fs_b = P4.Stdhdrs.mac_of_string "00:00:00:00:00:0b"
let fs_c = P4.Stdhdrs.mac_of_string "00:00:00:00:00:0c"

let fs_dump (sw : P4.Switch.t) =
  let srv = P4runtime.attach sw in
  let info = P4runtime.info srv in
  let entries =
    List.concat_map
      (fun ti -> P4runtime.read_table srv ~table_id:ti.P4.P4info.table_id)
      info.P4.P4info.tables
  in
  let groups =
    List.map
      (fun (g, ps) -> (g, List.sort Int64.compare ps))
      (P4runtime.multicast_groups srv)
  in
  P4runtime.Wire.encode_response
    (P4runtime.Wire.Table (List.sort compare entries))
  ^ P4runtime.Wire.encode_response (P4runtime.Wire.Groups groups)

let fs_in_vlan_id =
  lazy
    (let info = P4.P4info.of_program Snvs.p4 in
     (List.find
        (fun ti -> ti.P4.P4info.table_name = "in_vlan")
        info.P4.P4info.tables)
       .P4.P4info.table_id)

(* feed a frame only once the ingress port is admitted (a host keeps
   talking until it is); each retry syncs, which also ticks a downed
   link toward reconnection *)
let fs_feed (d : Snvs.deployment) ~port src =
  let ready () =
    let srv = P4runtime.attach d.switch in
    List.exists
      (fun e ->
        match e.P4runtime.matches with
        | P4runtime.FmExact p :: _ -> p = Int64.of_int port
        | _ -> false)
      (P4runtime.read_table srv ~table_id:(Lazy.force fs_in_vlan_id))
  in
  let n = ref 100 in
  while (not (ready ())) && !n > 0 do
    decr n;
    ignore (Nerpa.Controller.sync d.controller)
  done;
  ignore
    (P4.Switch.process d.switch ~in_port:port
       (P4.Stdhdrs.ethernet_frame ~dst:fs_bcast ~src ~ethertype:0x1234L
          ~payload:"x"))

let fs_workload (d : Snvs.deployment) ~mid =
  List.iter
    (fun (name, port, mode, tag, trunks) ->
      ignore (Snvs.add_port d ~name ~port ~mode ~tag ~trunks))
    [ ("p1", 1, "access", 10, []); ("p2", 2, "access", 10, []);
      ("p3", 3, "access", 20, []); ("p4", 4, "trunk", 0, [ 10; 20 ]) ];
  ignore (Nerpa.Controller.sync d.controller);
  fs_feed d ~port:1 fs_a;
  ignore (Nerpa.Controller.sync d.controller);
  fs_feed d ~port:2 fs_b;
  ignore (Nerpa.Controller.sync d.controller);
  mid ();
  (* a config change that can land while the link is down: repaired by
     reconciliation on reconnect *)
  ignore
    (Snvs.add_acl d ~priority:10 ~src:fs_a ~src_mask:0xFFFFFFFFFFFFL
       ~dst:fs_b ~dst_mask:0xFFFFFFFFFFFFL ~allow:false);
  ignore (Nerpa.Controller.sync d.controller);
  fs_feed d ~port:3 fs_c;
  ignore (Nerpa.Controller.sync d.controller);
  (* MAC mobility: A moves to port 2 *)
  fs_feed d ~port:2 fs_a;
  ignore (Nerpa.Controller.sync d.controller)

let fs_converge (d : Snvs.deployment) ctls =
  (* [heal] keeps the fault schedule armed; end-of-run convergence wants
     quiet links, so silence injection explicitly first *)
  List.iter (fun ctl -> Transport.set_faults_enabled ctl false) ctls;
  List.iter Transport.heal ctls;
  (* a healed management link may have lost batches to delayed polls
     without a visible error: force one resync *)
  Nerpa.Controller.mark_mgmt_dirty d.controller;
  ignore (Nerpa.Controller.sync d.controller);
  fs_feed d ~port:2 fs_a;
  fs_feed d ~port:2 fs_b;
  fs_feed d ~port:3 fs_c;
  ignore (Nerpa.Controller.sync d.controller);
  Nerpa.Controller.reconcile d.controller "snvs0";
  fs_dump d.switch

let serve_add_port db ~name ~port ~mode ~tag ~trunks =
  ignore
    (Ovsdb.Db.insert_exn db "Port"
       [
         ("name", Ovsdb.Datum.string name);
         ("port", Ovsdb.Datum.integer (Int64.of_int port));
         ("mode", Ovsdb.Datum.string mode);
         ("tag", Ovsdb.Datum.integer (Int64.of_int tag));
         ("trunks",
          Ovsdb.Datum.set
            (List.map (fun v -> Ovsdb.Atom.Integer (Int64.of_int v)) trunks));
       ])

(* ---------------- cluster demo / differential ---------------- *)

(* The sharded-vs-single differential at the heart of PR 10's
   correctness bar: run the identical config churn + learning traffic
   through (a) one controller owning every switch and (b) an N-shard
   in-process fleet exchanging digest-learned relations, optionally
   killing and restarting one shard mid-churn, then require every
   switch's forwarding state and every engine relation to be
   byte-identical. *)

let cluster_mac ~sw ~port =
  P4.Stdhdrs.mac_of_string (Printf.sprintf "02:00:00:00:%02x:%02x" sw port)

let cluster_switch_names n = List.init n (Printf.sprintf "sw%02d")

let cluster_churn_ports db =
  List.iter
    (fun (name, port, mode, tag, trunks) ->
      serve_add_port db ~name ~port ~mode ~tag ~trunks)
    [ ("p1", 1, "access", 10, []); ("p2", 2, "access", 10, []);
      ("p3", 3, "access", 20, []); ("p4", 4, "trunk", 0, [ 10; 20 ]) ]

let cluster_churn_acl db =
  ignore
    (Ovsdb.Db.insert_exn db "Acl"
       [
         ("priority", Ovsdb.Datum.integer 10L);
         ("src", Ovsdb.Datum.integer (cluster_mac ~sw:0 ~port:1));
         ("src_mask", Ovsdb.Datum.integer 0xFFFFFFFFFFFFL);
         ("dst", Ovsdb.Datum.integer (cluster_mac ~sw:0 ~port:2));
         ("dst_mask", Ovsdb.Datum.integer 0xFFFFFFFFFFFFL);
         ("allow", Ovsdb.Datum.boolean false);
       ])

(* feed one learning frame once the ingress port is admitted; [sync]
   drives whichever control plane (single controller or whole fleet)
   is under test *)
let cluster_feed ~sync ~switch ~name ~port src =
  let ready () =
    let srv = P4runtime.attach (switch name) in
    List.exists
      (fun e ->
        match e.P4runtime.matches with
        | P4runtime.FmExact p :: _ -> p = Int64.of_int port
        | _ -> false)
      (P4runtime.read_table srv ~table_id:(Lazy.force fs_in_vlan_id))
  in
  let n = ref 100 in
  while (not (ready ())) && !n > 0 do
    decr n;
    sync ()
  done;
  ignore
    (P4.Switch.process (switch name) ~in_port:port
       (P4.Stdhdrs.ethernet_frame ~dst:fs_bcast ~src ~ethertype:0x1234L
          ~payload:"x"))

(* every switch learns a host on ports 1 and 2 (sources unique per
   switch so the exchanged [learned_mac] rows never collide) *)
let cluster_traffic ~sync ~switch names =
  List.iteri
    (fun i name ->
      cluster_feed ~sync ~switch ~name ~port:1 (cluster_mac ~sw:i ~port:1);
      sync ();
      cluster_feed ~sync ~switch ~name ~port:2 (cluster_mac ~sw:i ~port:2);
      sync ())
    names

(* MAC mobility across the exchange: switch 0's port-1 host reappears
   on port 2, so every shard must LWW-displace the old binding *)
let cluster_mobility ~sync ~switch names =
  cluster_feed ~sync ~switch ~name:(List.hd names) ~port:2
    (cluster_mac ~sw:0 ~port:1);
  sync ()

let run_cluster_demo ~nshards ~names ~kill_restart () : bool =
  (* (a) the 1-controller baseline *)
  let bdb = Ovsdb.Db.create Snvs.schema in
  let bsw = List.map (fun n -> (n, P4.Switch.create ~name:n Snvs.p4)) names in
  let bctl =
    Nerpa.Controller.create ~digest_replace:Snvs.digest_replace ~db:bdb
      ~p4:Snvs.p4 ~rules:Snvs.rules ~switches:bsw ()
  in
  let bsync () = ignore (Nerpa.Controller.sync bctl) in
  let bswitch name = List.assoc name bsw in
  cluster_churn_ports bdb;
  bsync ();
  cluster_traffic ~sync:bsync ~switch:bswitch names;
  cluster_churn_acl bdb;
  bsync ();
  cluster_traffic ~sync:bsync ~switch:bswitch names;
  cluster_mobility ~sync:bsync ~switch:bswitch names;
  bsync ();
  (* (b) the sharded fleet over the same shared database contents *)
  let db = Ovsdb.Db.create Snvs.schema in
  let cl =
    Nerpa.Cluster.create_local ~digest_replace:Snvs.digest_replace ~nshards
      ~db ~p4:Snvs.p4 ~rules:Snvs.rules ~switch_names:names ()
  in
  let csync () = ignore (Nerpa.Cluster.sync_all cl) in
  let cswitch name = Nerpa.Cluster.switch cl name in
  cluster_churn_ports db;
  csync ();
  cluster_traffic ~sync:csync ~switch:cswitch names;
  if kill_restart then begin
    let victim = nshards - 1 in
    Nerpa.Cluster.kill cl victim;
    (* config lands while the shard is dead; survivors keep going *)
    cluster_churn_acl db;
    csync ();
    Nerpa.Cluster.restart cl victim;
    csync ()
  end
  else begin
    cluster_churn_acl db;
    csync ()
  end;
  (* re-offer all traffic: a restarted shard's switches re-learn *)
  cluster_traffic ~sync:csync ~switch:cswitch names;
  cluster_mobility ~sync:csync ~switch:cswitch names;
  csync ();
  (* the differential proper *)
  let ok = ref true in
  List.iter
    (fun name ->
      let ctl = Nerpa.Cluster.controller cl (Nerpa.Cluster.owner cl name) in
      if
        not
          (String.equal
             (Nerpa.Controller.dump_switch ctl name)
             (Nerpa.Controller.dump_switch bctl name))
      then begin
        ok := false;
        Printf.printf "  switch %s diverged from the baseline\n" name
      end)
    names;
  (* OVSDB-backed input relations carry [_uuid] columns drawn from a
     process-global counter, so two databases in one process can never
     agree on them — require those identical across shards (they share
     one database) and everything else identical to the baseline too *)
  let ovsdb_rel rel =
    List.exists
      (fun (tbl : Ovsdb.Schema.table) -> tbl.Ovsdb.Schema.tname = rel)
      Snvs.schema.Ovsdb.Schema.tables
  in
  List.iter
    (fun rel ->
      let reference = ref None in
      for k = 0 to nshards - 1 do
        if Nerpa.Cluster.alive cl k then begin
          let d =
            Nerpa.Controller.relation_dump (Nerpa.Cluster.controller cl k) rel
          in
          (match !reference with
          | None -> reference := Some d
          | Some r ->
            if d <> r then begin
              ok := false;
              Printf.printf "  relation %s diverged across shards (shard %d)\n"
                rel k
            end);
          if (not (ovsdb_rel rel)) && d <> Nerpa.Controller.relation_dump bctl rel
          then begin
            ok := false;
            Printf.printf "  relation %s diverged on shard %d\n" rel k
          end
        end
      done)
    (Nerpa.Controller.relations bctl);
  !ok

let cmd_faultsim nseeds mgmt_faults endpoint shard_map codec =
  ignore codec;
  (* faults are injected on in-process links; a socket endpoint has
     real loss instead of a seeded schedule *)
  let base_endpoint =
    match endpoint with
    | Ep_wire ->
      Nerpa.Endpoint.planes ~mgmt:Nerpa.Endpoint.plane_in_process
        ~p4_of:(fun _ -> Nerpa.Endpoint.plane_wire)
    | Ep_in_process -> Nerpa.Endpoint.in_process
    | Ep_loc _ ->
      Printf.eprintf
        "error: faultsim runs in-process; --endpoint must be in-process or \
         wire\n";
      exit 2
  in
  (* NERPA_POOL_SIZE > 0 runs every deployment on the shared domain
     pool (the CI matrix leg): the convergence check then also proves
     the parallel driver byte-identical to the sequential one. *)
  let pool =
    match Sys.getenv_opt "NERPA_POOL_SIZE" with
    | Some s
      when (match int_of_string_opt (String.trim s) with
           | Some n -> n > 0
           | None -> false) ->
      Some (Pool.default ())
    | _ -> None
  in
  let baseline =
    let d = Snvs.deploy ?pool () in
    fs_workload d ~mid:(fun () -> ());
    fs_converge d []
  in
  Printf.printf "%-6s %6s %6s %6s %6s %11s %12s %8s  %s\n" "seed" "drops"
    "dups" "delays" "disc" "reconciles" "corrections" "resyncs" "converged";
  let injected () =
    Obs.counter_value "transport.faults.drops"
    + Obs.counter_value "transport.faults.duplicates"
    + Obs.counter_value "transport.faults.delays"
  in
  let all_ok = ref true in
  for i = 1 to nseeds do
    let seed = 100 + (i * 37) in
    Obs.reset ();
    let endpoint =
      let ep = Nerpa.Endpoint.faulty_p4 ~seed base_endpoint in
      if mgmt_faults then Nerpa.Endpoint.faulty_mgmt ~seed:(seed + 1) ep
      else ep
    in
    let d = Snvs.deploy ?pool ~endpoint () in
    let ctl = Option.get (Nerpa.Controller.p4_ctl d.controller "snvs0") in
    let ctls =
      ctl :: Option.to_list (Nerpa.Controller.mgmt_ctl d.controller)
    in
    (* mid-run: a hard disconnect immediately healed.  [heal] must
       leave the fault schedule armed (a past bug silently disabled it),
       so the injection counters have to keep climbing afterwards. *)
    let at_heal = ref 0 in
    fs_workload d ~mid:(fun () ->
        Transport.force_disconnect ctl ~down_for:5 ();
        Transport.heal ctl;
        at_heal := injected ());
    let heal_armed = injected () > !at_heal in
    let dump = fs_converge d ctls in
    let ok = String.equal dump baseline && heal_armed in
    if not ok then all_ok := false;
    Printf.printf "%-6d %6d %6d %6d %6d %11d %12d %8d  %s%s\n" seed
      (Obs.counter_value "transport.faults.drops")
      (Obs.counter_value "transport.faults.duplicates")
      (Obs.counter_value "transport.faults.delays")
      (Obs.counter_value "transport.faults.disconnects")
      (Obs.counter_value "nerpa.reconcile.count")
      (Obs.counter_value "nerpa.reconcile.corrections")
      (Obs.counter_value "nerpa.resync.count")
      (if String.equal dump baseline then "yes" else "NO")
      (if heal_armed then "" else " (faults silent after heal!)")
  done;
  (match shard_map with
  | None -> ()
  | Some file ->
    (* the sharded fault leg: an in-process fleet with the map's
       topology, one shard killed and restarted mid-churn, checked
       byte-for-byte against the 1-controller baseline *)
    let m = load_map file in
    let ok =
      run_cluster_demo
        ~nshards:(Nerpa.Shard_map.nshards m)
        ~names:(Nerpa.Shard_map.switches m) ~kill_restart:true ()
    in
    Printf.printf "cluster kill/restart (%d shards, %d switches): %s\n"
      (Nerpa.Shard_map.nshards m)
      (List.length (Nerpa.Shard_map.switches m))
      (if ok then "converged" else "DIVERGED");
    if not ok then all_ok := false);
  exit (if !all_ok then 0 else 1)

(* ---------------- serve / connect ---------------- *)

(* The real client/server split: [serve] hosts the snvs database and
   switch behind Unix-domain sockets; [connect] drives them from
   another process.  Together they are the smoke test for the socket
   transport (CI runs serve in the background and connect against it). *)

(* Inject a learning frame once a connected controller has admitted the
   ingress port (installed its in_vlan entry) — the serve-side
   equivalent of a host retrying until the network lets it talk. *)
let serve_feed server switch ~port src ~timeout_s =
  let admitted () =
    Server.with_lock server (fun () ->
        let srv = P4runtime.attach switch in
        List.exists
          (fun e ->
            match e.P4runtime.matches with
            | P4runtime.FmExact p :: _ -> p = Int64.of_int port
            | _ -> false)
          (P4runtime.read_table srv ~table_id:(Lazy.force fs_in_vlan_id)))
  in
  let deadline = Unix.gettimeofday () +. timeout_s in
  let rec wait () =
    if admitted () then true
    else if Unix.gettimeofday () > deadline then false
    else begin
      Unix.sleepf 0.02;
      wait ()
    end
  in
  let ok = wait () in
  if ok then
    Server.with_lock server (fun () ->
        ignore
          (P4.Switch.process switch ~in_port:port
             (P4.Stdhdrs.ethernet_frame ~dst:fs_bcast ~src ~ethertype:0x1234L
                ~payload:"x")));
  ok

let cmd_serve endpoint shard_map shard codec auth secs workload =
  ignore codec;
  (* the daemon answers every client in the client's own frame codec *)
  let map, clustered =
    resolve_cluster ~shard_map ~endpoint ~switches:[ "snvs0" ]
  in
  check_shard map shard;
  let names = Nerpa.Shard_map.switches_of map shard in
  let switches =
    List.map (fun n -> (n, P4.Switch.create ~name:n Snvs.p4)) names
  in
  (* the shared management database lives with shard 0; every mapped
     shard hosts an exchange store of its own *)
  let db = if shard = 0 then Some (Ovsdb.Db.create Snvs.schema) else None in
  let xdb = if clustered then Some (Nerpa.Xrel.create_db ()) else None in
  let dir, tcp =
    match Nerpa.Shard_map.location map shard with
    | Nerpa.Shard_map.Dir d -> (d, None)
    | Nerpa.Shard_map.Tcp (h, p) -> (Filename.get_temp_dir_name (), Some (h, p))
  in
  let server = Server.create ?db ?xdb ?auth ?tcp ~switches ~dir () in
  Server.start server;
  Printf.printf "serving shard %d/%d (%s%s) at %s%s\n%!" shard
    (Nerpa.Shard_map.nshards map)
    (match db with Some _ -> "db + " | None -> "")
    (String.concat ", " names)
    (Nerpa.Shard_map.location_to_string (Nerpa.Shard_map.location map shard))
    (match secs with
    | Some s -> Printf.sprintf " for %gs" s
    | None -> "");
  if workload then begin
    (* the administrator's config churn, applied while clients may be
       connected, plus learning traffic once ports are admitted.
       Sources are unique per switch, as in the cluster demo, so a
       sharded fleet exchanges disjoint learned rows. *)
    (match db with
    | Some db -> Server.with_lock server (fun () -> cluster_churn_ports db)
    | None -> ());
    let fleet = Nerpa.Shard_map.switches map in
    List.iter
      (fun (name, sw) ->
        let i = Option.get (List.find_index (String.equal name) fleet) in
        ignore
          (serve_feed server sw ~port:1 (cluster_mac ~sw:i ~port:1)
             ~timeout_s:30.);
        ignore
          (serve_feed server sw ~port:2 (cluster_mac ~sw:i ~port:2)
             ~timeout_s:30.);
        ignore
          (serve_feed server sw ~port:3 (cluster_mac ~sw:i ~port:3)
             ~timeout_s:30.))
      switches
  end;
  (match secs with
  | Some s -> Unix.sleepf s
  | None ->
    while true do
      Unix.sleep 3600
    done);
  Server.stop server;
  exit 0

let cmd_connect endpoint shard_map shard codec auth rounds settle min_txns
    dump =
  let map, clustered =
    resolve_cluster ~shard_map ~endpoint ~switches:[ "snvs0" ]
  in
  check_shard map shard;
  let names = Nerpa.Shard_map.switches_of map shard in
  if names = [] then begin
    Printf.eprintf "error: shard %d owns no switches\n" shard;
    exit 2
  end;
  let ep = Nerpa.Cluster.shard_endpoint ~codec ?auth map ~shard in
  let exchange =
    (* a lone un-mapped daemon hosts no exchange store *)
    if clustered then Some (Nerpa.Cluster.shard_exchange ~codec ?auth map ~shard)
    else None
  in
  let c = Snvs.connect ~switch_names:names ?exchange ~endpoint:ep () in
  let quiet = ref 0 and r = ref 0 in
  while !quiet < settle && !r < rounds do
    incr r;
    let n = Nerpa.Controller.sync c in
    if n = 0 then incr quiet else quiet := 0;
    Unix.sleepf 0.05
  done;
  let st = Nerpa.Controller.stats c in
  Printf.printf "shard=%d rounds=%d txns=%d entries=%d digests=%d groups=%d\n"
    shard !r st.Nerpa.Controller.txns st.entries_written st.digests_consumed
    st.groups_updated;
  List.iter
    (fun name ->
      match Nerpa.Controller.dump_switch c name with
      | s -> if dump then print_string s
      | exception Nerpa.Controller.Controller_error msg ->
        Printf.eprintf "error: %s\n" msg;
        exit 1)
    names;
  if st.txns < min_txns then begin
    Printf.eprintf "error: only %d txns committed (expected >= %d) — was the \
                    server reachable?\n"
      st.txns min_txns;
    exit 1
  end;
  exit 0

(* ---------------- cluster ---------------- *)

let cmd_cluster shards switches kill_restart shard_map =
  let nshards, names =
    match shard_map with
    | Some file ->
      let m = load_map file in
      (Nerpa.Shard_map.nshards m, Nerpa.Shard_map.switches m)
    | None -> (shards, cluster_switch_names switches)
  in
  if nshards < 1 || names = [] then begin
    Printf.eprintf "error: need at least 1 shard and 1 switch\n";
    exit 2
  end;
  let ok = run_cluster_demo ~nshards ~names ~kill_restart () in
  Printf.printf
    "cluster: %d shards x %d switches%s: %s (exchange: %d publishes, %d rows \
     out, %d rows in, %d resyncs)\n"
    nshards (List.length names)
    (if kill_restart then " with kill/restart" else "")
    (if ok then "converged byte-identically" else "DIVERGED")
    (Obs.counter_value "nerpa.exchange.publishes")
    (Obs.counter_value "nerpa.exchange.rows_published")
    (Obs.counter_value "nerpa.exchange.rows_applied")
    (Obs.counter_value "nerpa.exchange.resyncs")
  ;
  exit (if ok then 0 else 1)

(* ---------------- cmdliner wiring ---------------- *)

open Cmdliner

let file_arg n doc = Arg.(required & pos n (some file) None & info [] ~doc)

(* the uniform cluster flags (serve/connect/faultsim/stats) *)

let ep_conv =
  let parse s =
    match ep_spec_of_string s with
    | Ok e -> Ok e
    | Error m -> Error (`Msg m)
  in
  Arg.conv (parse, fun ppf e -> Format.pp_print_string ppf (ep_spec_to_string e))

let codec_conv =
  let parse = function
    | "json" -> Ok Transport.Json
    | "binary" -> Ok Transport.Binary
    | s -> Error (`Msg (Printf.sprintf "unknown codec %S (json or binary)" s))
  in
  let print ppf c =
    Format.pp_print_string ppf
      (match c with Transport.Json -> "json" | Transport.Binary -> "binary")
  in
  Arg.conv (parse, print)

let endpoint_arg default =
  Arg.(
    value
    & opt ep_conv default
    & info [ "endpoint" ] ~docv:"EP"
        ~doc:
          "where the planes live: $(b,in-process), $(b,wire) (in-process \
           through serialized bytes), $(b,dir:PATH) (Unix-domain sockets) or \
           $(b,tcp:HOST:PORT)")

let codec_arg =
  Arg.(
    value
    & opt codec_conv Transport.Binary
    & info [ "codec" ] ~docv:"CODEC"
        ~doc:
          "preferred wire codec for socket endpoints, $(b,binary) or \
           $(b,json); binary negotiates down to json against a pre-codec \
           server")

let shard_map_arg =
  Arg.(
    value
    & opt (some file) None
    & info [ "shard-map" ] ~docv:"FILE"
        ~doc:
          "cluster shard map (the Nerpa.Shard_map text form); overrides \
           $(b,--endpoint)")

let shard_arg =
  Arg.(
    value & opt int 0
    & info [ "shard" ] ~docv:"K" ~doc:"this process's shard id in the map")

let auth_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "auth" ] ~docv:"SECRET"
        ~doc:"shared secret demanded by the connection handshake")

let check_cmd =
  let doc = "type-check a DL program and report its strata" in
  Cmd.v
    (Cmd.info "check" ~doc)
    Term.(const cmd_check $ file_arg 0 "the .dl program")

let run_cmd =
  let doc = "run a transaction script against a DL program" in
  Cmd.v
    (Cmd.info "run" ~doc)
    Term.(
      const cmd_run $ file_arg 0 "the .dl program" $ file_arg 1 "the script file")

let codegen_cmd =
  let doc = "print the control-plane schema generated from the snvs planes" in
  Cmd.v (Cmd.info "codegen" ~doc) Term.(const cmd_codegen $ const ())

let stats_cmd =
  let doc =
    "run the snvs demo workload and print the observability registry"
  in
  let json =
    Arg.(value & flag & info [ "json" ] ~doc:"print one line of JSON")
  in
  Cmd.v (Cmd.info "stats" ~doc)
    Term.(
      const cmd_stats $ json
      $ endpoint_arg Ep_in_process
      $ shard_map_arg $ codec_arg $ auth_arg)

let faultsim_cmd =
  let doc =
    "run the snvs workload over seeded faulty links and check that every \
     run converges to the fault-free switch state"
  in
  let seeds =
    Arg.(
      value & opt int 5
      & info [ "seeds" ] ~doc:"number of seeded fault schedules to run")
  in
  let mgmt_faults =
    Arg.(
      value & flag
      & info [ "mgmt-faults" ]
          ~doc:
            "also inject faults on the management (OVSDB monitor) link, \
             exercising the monitor-resync repair path")
  in
  Cmd.v (Cmd.info "faultsim" ~doc)
    Term.(
      const cmd_faultsim $ seeds $ mgmt_faults
      $ endpoint_arg Ep_wire
      $ shard_map_arg $ codec_arg)

let serve_cmd =
  let doc =
    "host one shard's daemon — the snvs database (shard 0), the shard's \
     switches and (in a cluster) its exchange store — behind Unix-domain or \
     TCP listeners"
  in
  let for_ =
    Arg.(
      value & opt (some float) None
      & info [ "for" ] ~docv:"SECS" ~doc:"serve for this long, then exit \
                                          (default: forever)")
  in
  let workload =
    Arg.(
      value & flag
      & info [ "workload" ]
          ~doc:
            "apply the snvs config workload to the hosted database and \
             inject learning traffic once a connected controller admits \
             the ports")
  in
  Cmd.v (Cmd.info "serve" ~doc)
    Term.(
      const cmd_serve
      $ endpoint_arg (Ep_loc (Nerpa.Shard_map.Dir "/tmp/nerpa"))
      $ shard_map_arg $ shard_arg $ codec_arg $ auth_arg $ for_ $ workload)

let connect_cmd =
  let doc =
    "drive one shard's controller against nerpa_cli serve daemons over \
     sockets (with --shard-map, subscribing to every peer shard's exchange \
     store)"
  in
  let rounds =
    Arg.(
      value & opt int 200
      & info [ "rounds" ] ~doc:"maximum sync rounds before giving up")
  in
  let settle =
    Arg.(
      value & opt int 10
      & info [ "settle" ]
          ~doc:"consecutive quiescent rounds that count as converged")
  in
  let min_txns =
    Arg.(
      value & opt int 0
      & info [ "min-txns" ]
          ~doc:"fail unless at least this many transactions were committed")
  in
  let dump =
    Arg.(
      value & flag
      & info [ "dump" ] ~doc:"print the switch's final forwarding state")
  in
  Cmd.v (Cmd.info "connect" ~doc)
    Term.(
      const cmd_connect
      $ endpoint_arg (Ep_loc (Nerpa.Shard_map.Dir "/tmp/nerpa"))
      $ shard_map_arg $ shard_arg $ codec_arg $ auth_arg $ rounds $ settle
      $ min_txns $ dump)

let cluster_cmd =
  let doc =
    "run an in-process N-shard fleet over the snvs planes and check it \
     converges byte-identically to the 1-controller baseline"
  in
  let shards =
    Arg.(
      value & opt int 3 & info [ "shards" ] ~docv:"N" ~doc:"number of shards")
  in
  let switches =
    Arg.(
      value & opt int 4
      & info [ "switches" ] ~docv:"M" ~doc:"number of switches in the fleet")
  in
  let kill_restart =
    Arg.(
      value & flag
      & info [ "kill-restart" ]
          ~doc:"kill and restart one shard mid-churn before converging")
  in
  Cmd.v (Cmd.info "cluster" ~doc)
    Term.(
      const cmd_cluster $ shards $ switches $ kill_restart $ shard_map_arg)

let () =
  let doc = "Nerpa full-stack SDN tooling" in
  let info = Cmd.info "nerpa_cli" ~doc ~version:"1.0.0" in
  exit
    (Cmd.eval
       (Cmd.group info
          [ check_cmd; run_cmd; codegen_cmd; stats_cmd; faultsim_cmd;
            serve_cmd; connect_cmd; cluster_cmd ]))
